"""Tests of the ``repro lint`` static-analysis suite (see repro/lint/).

Each rule gets positive + negative snippet fixtures (tiny packages built in
a temp directory and analysed with the real rules), the suppression and
baseline mechanisms get round-trip coverage, the JSON reporter schema is
pinned, and the self-check runs the full suite over ``src/repro`` itself
against the committed baseline — the repo is its own fixture.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.lint import (
    LINT_VERSION,
    RULES,
    Baseline,
    LintError,
    build_info,
    render_json,
    report_dict,
    run_lint,
    ruleset_hash,
)

ALL_RULES = (
    "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007", "RL008",
)


def lint_files(tmp_path: Path, files: dict[str, str], *, rules=None, baseline=None):
    for relpath, code in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code))
    return run_lint(tmp_path, rules=rules, baseline=baseline)


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_all_six_rules_registered(self):
        import repro.lint.rules  # noqa: F401  (registration side effect)

        assert set(ALL_RULES) <= set(RULES)

    def test_ruleset_hash_is_stable_and_short(self):
        assert ruleset_hash() == ruleset_hash()
        assert len(ruleset_hash()) == 12

    def test_build_info_shape(self):
        info = build_info()
        assert info["lint_version"] == LINT_VERSION
        assert info["ruleset_hash"] == ruleset_hash()
        assert set(ALL_RULES) <= set(info["rules"])

    def test_unknown_rule_id_rejected(self, tmp_path):
        with pytest.raises(LintError):
            lint_files(tmp_path, {"mod.py": "x = 1\n"}, rules=["RL999"])


# ---------------------------------------------------------------------- #
# RL001 float equality
# ---------------------------------------------------------------------- #
class TestRL001:
    POSITIVE = """
        def arrived(releases, i, clock):
            return releases[i] == clock
    """

    def test_fires_on_time_equality(self, tmp_path):
        result = lint_files(
            tmp_path, {"online/x.py": self.POSITIVE}, rules=["RL001"]
        )
        assert len(result.new) == 1
        assert result.new[0].rule == "RL001"
        assert "times_close" in result.new[0].message

    def test_clean_on_tolerant_and_integer_comparisons(self, tmp_path):
        code = """
            def ok(releases, i, clock, owner, task_index, kind):
                a = releases[i] <= clock + 1e-9
                b = owner == task_index
                c = kind == "start"
                d = len(releases) == 0
                return a, b, c, d
        """
        result = lint_files(tmp_path, {"sim/x.py": code}, rules=["RL001"])
        assert result.new == []

    def test_out_of_scope_paths_are_ignored(self, tmp_path):
        result = lint_files(
            tmp_path, {"model/x.py": self.POSITIVE}, rules=["RL001"]
        )
        assert result.new == []


# ---------------------------------------------------------------------- #
# RL002 determinism
# ---------------------------------------------------------------------- #
class TestRL002:
    def test_fires_on_each_nondeterminism_kind(self, tmp_path):
        code = """
            import random
            import numpy as np

            def draw():
                a = random.random()
                b = np.random.rand(3)
                rng = np.random.default_rng()
                for item in set([3, 1]):
                    a += item
                return a, b, rng
        """
        result = lint_files(tmp_path, {"core/x.py": code}, rules=["RL002"])
        messages = " | ".join(f.message for f in result.new)
        assert len(result.new) == 4
        assert "random.random" in messages
        assert "np.random.rand" in messages
        assert "without an explicit seed" in messages
        assert "iteration order over a set" in messages

    def test_clean_on_seeded_and_sorted(self, tmp_path):
        code = """
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                total = 0
                for item in sorted(set([3, 1])):
                    total += item
                return rng, total
        """
        result = lint_files(tmp_path, {"core/x.py": code}, rules=["RL002"])
        assert result.new == []


# ---------------------------------------------------------------------- #
# RL003 fingerprint / shape stability
# ---------------------------------------------------------------------- #
class TestRL003:
    def test_unregistered_as_dict_fires(self, tmp_path):
        code = """
            class Thing:
                def as_dict(self):
                    return {"a": 1}
        """
        result = lint_files(tmp_path, {"analysis/x.py": code}, rules=["RL003"])
        assert len(result.new) == 1
        assert "not registered" in result.new[0].message

    def test_key_drift_fires(self, tmp_path):
        code = """
            class MalleableTask:
                def as_dict(self):
                    return {"name": 1, "times": 2, "extra": 3}
        """
        result = lint_files(tmp_path, {"model/task.py": code}, rules=["RL003"])
        assert len(result.new) == 1
        assert "drifted" in result.new[0].message
        assert "extra" in result.new[0].message

    def test_matching_pinned_shape_is_clean(self, tmp_path):
        code = """
            class MalleableTask:
                def as_dict(self):
                    payload = {"name": self.n, "times": self.t}
                    payload["release"] = self.r
                    return payload
        """
        result = lint_files(tmp_path, {"model/task.py": code}, rules=["RL003"])
        assert result.new == []

    def test_fingerprint_domain_tag_drift_fires(self, tmp_path):
        code = """
            import hashlib

            def profile_fingerprint(m, times):
                digest = hashlib.sha256()
                digest.update(b"repro-instance-v2")
                return digest.hexdigest()
        """
        result = lint_files(
            tmp_path, {"model/instance.py": code}, rules=["RL003"]
        )
        assert any("domain tags" in f.message for f in result.new)


# ---------------------------------------------------------------------- #
# RL004 thread-safety auditor
# ---------------------------------------------------------------------- #
class TestRL004:
    def test_unlocked_read_of_guarded_counter_fires(self, tmp_path):
        code = """
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def incr(self):
                    with self._lock:
                        self._count += 1

                def read(self):
                    return self._count
        """
        result = lint_files(tmp_path, {"service/x.py": code}, rules=["RL004"])
        assert len(result.new) == 1
        finding = result.new[0]
        assert finding.symbol == "Svc.read"
        assert "read outside any lock scope" in finding.message

    def test_all_locked_and_init_writes_are_clean(self, tmp_path):
        code = """
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0
                    self.capacity = 8  # config: read under lock, never rewritten

                def incr(self):
                    with self._lock:
                        if self._count < self.capacity:
                            self._count += 1

                def read(self):
                    with self._lock:
                        return self._count

                def snapshot(self):
                    return self.capacity
        """
        result = lint_files(tmp_path, {"service/x.py": code}, rules=["RL004"])
        assert result.new == []

    def test_mutating_call_counts_as_write(self, tmp_path):
        code = """
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def locked_add(self, x):
                    with self._lock:
                        self._items.append(x)

                def bare_add(self, x):
                    self._items.append(x)
        """
        result = lint_files(tmp_path, {"service/x.py": code}, rules=["RL004"])
        assert len(result.new) == 1
        assert result.new[0].symbol == "Svc.bare_add"


# ---------------------------------------------------------------------- #
# RL005 HTTP error mapping
# ---------------------------------------------------------------------- #
class TestRL005:
    def test_bare_500_without_model_error_mapping_fires(self, tmp_path):
        code = """
            class Handler:
                def handle(self):
                    try:
                        self.work()
                    except Exception as exc:
                        self._send_json(500, {"error": str(exc)})
        """
        result = lint_files(tmp_path, {"service/h.py": code}, rules=["RL005"])
        assert len(result.new) == 1
        assert "bare 500" in result.new[0].message

    def test_model_error_answering_5xx_fires(self, tmp_path):
        code = """
            class Handler:
                def handle(self):
                    try:
                        self.work()
                    except ModelError as exc:
                        self._send_json(500, {"error": str(exc)})
        """
        result = lint_files(tmp_path, {"service/h.py": code}, rules=["RL005"])
        assert len(result.new) == 1
        assert "must map to 4xx" in result.new[0].message

    def test_compliant_handler_chain_is_clean(self, tmp_path):
        code = """
            class Handler:
                def handle(self):
                    try:
                        self.work()
                    except ModelError as exc:
                        self._send_json(400, {"error": str(exc)})
                    except ServiceOverloadedError as exc:
                        self._send_json(503, {"error": str(exc)})
                    except Exception as exc:
                        self._send_json(500, {"error": str(exc)})
        """
        result = lint_files(tmp_path, {"service/h.py": code}, rules=["RL005"])
        assert result.new == []

    def test_response_json_constructor_recognised(self, tmp_path):
        # Version 2: the transport-split Response constructors count as
        # status-sending calls, same as the legacy _send_json helper.
        code = """
            class App:
                def handle(self):
                    try:
                        self.work()
                    except Exception as exc:
                        return Response.json(500, {"error": str(exc)})
        """
        result = lint_files(tmp_path, {"service/h.py": code}, rules=["RL005"])
        assert len(result.new) == 1
        assert "bare 500" in result.new[0].message

    def test_response_with_status_keyword_recognised(self, tmp_path):
        code = """
            class App:
                def handle(self):
                    try:
                        self.work()
                    except ModelError as exc:
                        return Response(status=502, body=str(exc).encode())
        """
        result = lint_files(tmp_path, {"service/h.py": code}, rules=["RL005"])
        assert len(result.new) == 1
        assert "must map to 4xx" in result.new[0].message


# ---------------------------------------------------------------------- #
# RL008 error mapping centralised in the shared mapper
# ---------------------------------------------------------------------- #
class TestRL008:
    def test_inline_model_error_status_fires(self, tmp_path):
        code = """
            class App:
                def handle(self, request):
                    try:
                        return self.dispatch(request)
                    except ModelError as exc:
                        return Response.json(400, {"error": str(exc)})
        """
        result = lint_files(tmp_path, {"service/app.py": code}, rules=["RL008"])
        assert len(result.new) == 1
        assert "map_exception" in result.new[0].message

    def test_broad_handler_with_constant_status_fires(self, tmp_path):
        code = """
            class App:
                def handle(self, request):
                    try:
                        return self.dispatch(request)
                    except Exception as exc:
                        return Response.json(500, {"error": str(exc)})
        """
        result = lint_files(tmp_path, {"service/app.py": code}, rules=["RL008"])
        assert len(result.new) == 1

    def test_deferring_to_shared_mapper_is_clean(self, tmp_path):
        code = """
            class App:
                def handle(self, request):
                    try:
                        return self.dispatch(request)
                    except Exception as exc:
                        return map_exception(exc)
        """
        result = lint_files(tmp_path, {"service/app.py": code}, rules=["RL008"])
        assert result.new == []

    def test_mapper_module_itself_is_exempt(self, tmp_path):
        code = """
            def map_exception(exc):
                try:
                    raise exc
                except ModelError:
                    return Response.json(400, {"error": str(exc)})
                except Exception:
                    return Response.json(500, {"error": str(exc)})
        """
        result = lint_files(
            tmp_path, {"service/http/errors.py": code}, rules=["RL008"]
        )
        assert result.new == []

    def test_routing_errors_outside_mapped_set_are_clean(self, tmp_path):
        # The router's "shard unavailable" 503s are availability policy,
        # not exception->status mapping: ClusterError/OSError stay legal.
        code = """
            class Router:
                def forward(self, request):
                    try:
                        return self.forward_once(request)
                    except ClusterError as exc:
                        return Response.json(503, {"error": str(exc)})
                    except OSError:
                        return Response.json(503, {"error": "shard unavailable"})
        """
        result = lint_files(tmp_path, {"service/router.py": code}, rules=["RL008"])
        assert result.new == []

    def test_non_constant_status_is_clean(self, tmp_path):
        code = """
            class App:
                def handle(self, request):
                    try:
                        return self.dispatch(request)
                    except Exception as exc:
                        status, payload = self.mapper(exc)
                        return Response.json(status, payload)
        """
        result = lint_files(tmp_path, {"service/app.py": code}, rules=["RL008"])
        assert result.new == []


# ---------------------------------------------------------------------- #
# RL006 registry conformance
# ---------------------------------------------------------------------- #
class TestRL006:
    REGISTRY = """
        from .algos import BadScheduler, GoodScheduler

        ALGORITHMS = {"good": GoodScheduler, "bad": BadScheduler}
        ONLINE_KERNELS = ("k1",)

        def make_rescheduler(kernel="k1"):
            from .kerns import K1
            factories = {cls.kernel: cls for cls in (K1,)}
            return factories[kernel]
    """
    ALGOS = """
        class GoodScheduler:
            name = "good"

            def schedule(self, instance):
                return instance

        class BadScheduler:
            def __init__(self):
                self.name = "bad"

            def schedule(self, instance):
                return instance
    """
    KERNS = """
        class K1:
            kernel = "k1"

            def replay(self, trace):
                return trace
    """

    def files(self, *, registry=None, kerns=None):
        return {
            "registry.py": registry or self.REGISTRY,
            "algos.py": self.ALGOS,
            "kerns.py": kerns or self.KERNS,
        }

    def test_missing_class_level_name_fires(self, tmp_path):
        result = lint_files(tmp_path, self.files(), rules=["RL006"])
        assert len(result.new) == 1
        finding = result.new[0]
        assert finding.symbol == "BadScheduler"
        assert "class-level 'name'" in finding.message

    def test_online_kernels_drift_fires(self, tmp_path):
        registry = self.REGISTRY.replace('("k1",)', '("k1", "k2")')
        result = lint_files(
            tmp_path, self.files(registry=registry), rules=["RL006"]
        )
        assert any(f.symbol == "ONLINE_KERNELS" for f in result.new)

    def test_kernel_without_replay_fires(self, tmp_path):
        kerns = """
            class K1:
                kernel = "k1"
        """
        result = lint_files(tmp_path, self.files(kerns=kerns), rules=["RL006"])
        assert any("'replay'" in f.message for f in result.new)


# ---------------------------------------------------------------------- #
# RL007 observability name registry
# ---------------------------------------------------------------------- #
class TestRL007:
    NAMES = """
        SPAN_PARSE = "parse"
        SPAN_ROUTE = "route"
        SPAN_NAMES = frozenset({SPAN_PARSE, SPAN_ROUTE})

        METRIC_REQUESTS_TOTAL = "repro_requests_total"
        METRICS = {
            METRIC_REQUESTS_TOTAL: ("counter", "Requests"),
            "repro_queue_depth": ("gauge", "Queue depth"),
        }
    """

    def files(self, caller: str) -> dict[str, str]:
        return {"obs/names.py": self.NAMES, "service/caller.py": caller}

    def test_registered_constant_span_is_clean(self, tmp_path):
        caller = """
            from ..obs.names import SPAN_PARSE

            def handle(trace, t0, t1):
                trace.record_span(SPAN_PARSE, t0, t1)
                with trace.span(SPAN_PARSE):
                    pass
        """
        result = lint_files(tmp_path, self.files(caller), rules=["RL007"])
        assert result.new == []

    def test_string_literal_span_name_fires(self, tmp_path):
        caller = """
            def handle(trace, t0, t1):
                trace.record_span("parse", t0, t1)
        """
        result = lint_files(tmp_path, self.files(caller), rules=["RL007"])
        assert len(result.new) == 1
        assert "string literal" in result.new[0].message

    def test_unregistered_span_constant_fires(self, tmp_path):
        caller = """
            SPAN_BOGUS = "bogus"

            def handle(trace):
                with trace.span(SPAN_BOGUS):
                    pass
        """
        result = lint_files(tmp_path, self.files(caller), rules=["RL007"])
        assert len(result.new) == 1
        assert "SPAN_BOGUS" in result.new[0].message

    def test_non_span_identifier_fires(self, tmp_path):
        caller = """
            def handle(trace, name):
                trace.record_span(name, 0.0, 1.0)
        """
        # Even a bare variable must be a SPAN_* registry constant: wrappers
        # forwarding validated names suppress the line explicitly.
        result = lint_files(tmp_path, self.files(caller), rules=["RL007"])
        assert len(result.new) == 1
        assert "'name'" in result.new[0].message

    def test_undeclared_metric_literal_fires(self, tmp_path):
        caller = """
            def emit(sink):
                sink.sample("repro_surprise_total", 1)
        """
        result = lint_files(tmp_path, self.files(caller), rules=["RL007"])
        assert len(result.new) == 1
        assert result.new[0].symbol == "repro_surprise_total"

    def test_declared_metric_literal_is_clean(self, tmp_path):
        caller = """
            def emit(sink):
                sink.sample("repro_requests_total", 1)
                sink.sample("repro_queue_depth", 3)
        """
        result = lint_files(tmp_path, self.files(caller), rules=["RL007"])
        assert result.new == []

    def test_without_names_module_rule_is_silent(self, tmp_path):
        caller = """
            def handle(trace, t0, t1):
                trace.record_span("anything", t0, t1)
        """
        result = lint_files(
            tmp_path, {"service/caller.py": caller}, rules=["RL007"]
        )
        assert result.new == []

    def test_health_and_slo_families_are_registered(self):
        # The burn-rate/health additions must go through the registry like
        # every other family — a literal that is not in METRICS would trip
        # RL007 at any emit site.
        from repro.obs import names

        for name in (
            "repro_health_state",
            "repro_slo_fast_burn_rate",
            "repro_slo_slow_burn_rate",
            "repro_scale_hint",
            "repro_history_samples",
        ):
            assert name in names.METRICS
            kind, help_text = names.METRICS[name]
            assert kind in ("counter", "gauge")
            assert help_text

    def test_registered_health_family_emit_is_clean(self, tmp_path):
        names = self.NAMES + """
        METRIC_HEALTH_STATE = "repro_health_state"
        METRICS[METRIC_HEALTH_STATE] = ("gauge", "Health state")
        """
        caller = """
            def emit(sink):
                sink.sample("repro_health_state", 1)
        """
        files = {"obs/names.py": names, "service/caller.py": caller}
        result = lint_files(tmp_path, files, rules=["RL007"])
        assert result.new == []


# ---------------------------------------------------------------------- #
# suppressions
# ---------------------------------------------------------------------- #
class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        code = """
            import random

            def jitter():
                return random.random()  # repro-lint: disable=RL002
        """
        result = lint_files(tmp_path, {"core/x.py": code}, rules=["RL002"])
        assert result.new == []
        assert len(result.suppressed) == 1

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        code = """
            import random

            def jitter():
                # repro-lint: disable=RL002
                return random.random()
        """
        result = lint_files(tmp_path, {"core/x.py": code}, rules=["RL002"])
        assert result.new == []
        assert len(result.suppressed) == 1

    def test_suppression_is_per_rule(self, tmp_path):
        code = """
            import random

            def jitter():
                return random.random()  # repro-lint: disable=RL001
        """
        result = lint_files(tmp_path, {"core/x.py": code}, rules=["RL002"])
        assert len(result.new) == 1


# ---------------------------------------------------------------------- #
# baseline
# ---------------------------------------------------------------------- #
class TestBaseline:
    CODE = """
        import random

        def one():
            return random.random()

        def two():
            return random.random()
    """

    def test_round_trip_grandfathers_findings(self, tmp_path):
        first = lint_files(
            tmp_path / "a", {"core/x.py": self.CODE}, rules=["RL002"]
        )
        assert len(first.new) == 2
        path = tmp_path / "baseline.json"
        Baseline.from_findings(first.new, ruleset=first.ruleset_hash).save(path)
        again = lint_files(
            tmp_path / "b", {"core/x.py": self.CODE}, rules=["RL002"], baseline=path
        )
        assert again.new == []
        assert len(again.grandfathered) == 2
        assert again.exit_code == 0

    def test_extra_occurrence_beyond_count_is_new(self, tmp_path):
        first = lint_files(
            tmp_path / "a", {"core/x.py": self.CODE}, rules=["RL002"]
        )
        path = tmp_path / "baseline.json"
        Baseline.from_findings(first.new).save(path)
        extra = (
            textwrap.dedent(self.CODE)
            + "\ndef three():\n    return random.random()\n"
        )
        again = lint_files(
            tmp_path / "b", {"core/x.py": extra}, rules=["RL002"], baseline=path
        )
        assert len(again.new) == 1
        assert again.new[0].symbol == "three"
        assert again.exit_code == 1

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


# ---------------------------------------------------------------------- #
# reporters
# ---------------------------------------------------------------------- #
class TestReporters:
    def test_json_report_schema(self, tmp_path):
        code = """
            import random

            def draw():
                return random.random()
        """
        result = lint_files(tmp_path, {"core/x.py": code}, rules=["RL002"])
        payload = json.loads(render_json(result))
        assert payload == report_dict(result)
        assert set(payload) == {
            "lint_version",
            "ruleset_hash",
            "root",
            "rules",
            "summary",
            "findings",
            "grandfathered",
        }
        assert payload["lint_version"] == LINT_VERSION
        assert set(payload["summary"]) == {
            "files_scanned",
            "new",
            "grandfathered",
            "suppressed",
            "baseline_entries",
        }
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "symbol", "message"}
        assert finding["rule"] == "RL002"
        rule_row = payload["rules"][0]
        assert set(rule_row) == {"id", "title", "version", "scope", "project"}


# ---------------------------------------------------------------------- #
# CLI + self-check
# ---------------------------------------------------------------------- #
def repo_paths() -> tuple[Path, Path]:
    package_root = Path(repro.__file__).resolve().parent
    return package_root, package_root.parent.parent / "lint-baseline.json"


class TestCLIAndSelfCheck:
    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "mod.py").write_text("x = 1\n")
        assert main(["lint", "--root", str(clean)]) == 0

        dirty = tmp_path / "dirty" / "core"
        dirty.mkdir(parents=True)
        (dirty / "x.py").write_text("import random\ny = random.random()\n")
        assert main(["lint", "--root", str(tmp_path / "dirty")]) == 1
        assert main(["lint", "--root", str(tmp_path / "dirty"), "--rule", "RL999"]) == 2
        capsys.readouterr()

    def test_cli_json_output_parses(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["lint", "--json", "--root", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 0

    def test_cli_write_baseline_round_trip(self, tmp_path, capsys):
        core = tmp_path / "pkg" / "core"
        core.mkdir(parents=True)
        (core / "x.py").write_text("import random\ny = random.random()\n")
        baseline = tmp_path / "baseline.json"
        root = str(tmp_path / "pkg")
        assert (
            main(["lint", "--root", root, "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        assert baseline.is_file()
        assert main(["lint", "--root", root, "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_self_check_src_repro_is_clean_against_baseline(self):
        package_root, baseline = repo_paths()
        assert baseline.is_file(), "committed lint-baseline.json is missing"
        result = run_lint(package_root, baseline=baseline)
        assert result.files_scanned > 50
        assert [f.render() for f in result.new] == []
        # The grandfathered set must not silently shrink below the baseline
        # either direction matters: fixing a finding should also prune the
        # baseline entry (tracked manually, see README).
        assert len(result.grandfathered) == result.baseline_entries

    def test_every_rule_runs_in_self_check(self):
        package_root, baseline = repo_paths()
        result = run_lint(package_root, baseline=baseline)
        assert [r.id for r in result.rules] == list(ALL_RULES)


class TestServiceBuildInfo:
    def test_metrics_advertises_lint_ruleset(self):
        from repro.service import SchedulerService

        with SchedulerService(workers=1) as service:
            build = service.metrics()["build"]
        assert build == build_info()
        assert build["ruleset_hash"] == ruleset_hash()
