"""Tests for the analytical quantities of the paper (repro.core.theory)."""

from __future__ import annotations

import math

import pytest

from repro.core import theory


class TestConstants:
    def test_headline_guarantee(self):
        assert theory.overall_guarantee() == pytest.approx(math.sqrt(3))
        assert 1.0 + theory.LAMBDA_STAR == pytest.approx(theory.SQRT3)
        assert 2.0 * theory.MU_STAR == pytest.approx(theory.SQRT3)

    def test_malleable_list_guarantee_matches_core(self):
        from repro.core.malleable_list import malleable_list_guarantee

        for m in (1, 3, 7, 50):
            assert theory.malleable_list_guarantee(m) == pytest.approx(
                malleable_list_guarantee(m)
            )

    def test_largest_machine_below_sqrt3(self):
        m = theory.largest_machine_below_sqrt3()
        assert m == 6
        assert theory.malleable_list_guarantee(m) <= theory.SQRT3
        assert theory.malleable_list_guarantee(m + 1) > theory.SQRT3


class TestKStar:
    def test_definition(self):
        for mu in (0.6, 0.75, 0.8, theory.MU_STAR, 0.9, 0.95):
            k = theory.k_star(mu)
            assert k / (k + 1) < mu
            assert (k + 1) / (k + 2) >= mu

    def test_known_values(self):
        assert theory.k_star(0.75) == 2
        assert theory.k_star(theory.MU_STAR) == 6
        assert theory.k_star(0.95) == 18

    def test_monotone_in_mu(self):
        values = [theory.k_star(0.55 + 0.02 * i) for i in range(22)]
        assert values == sorted(values)

    def test_invalid(self):
        with pytest.raises(ValueError):
            theory.k_star(0.5)
        with pytest.raises(ValueError):
            theory.k_star(1.2)


class TestKHat:
    def test_definition(self):
        for mu in (0.75, theory.MU_STAR, 0.9):
            assert theory.k_hat(mu) == math.ceil((theory.k_star(mu) + 1) / 2)

    def test_halving_keeps_below_two_mu(self):
        """Allotting ⌈(k*+1)/2⌉ processors at most doubles a sub-μ task."""
        for mu in (0.75, theory.MU_STAR, 0.9):
            k_full = theory.k_star(mu) + 1
            k_half = theory.k_hat(mu)
            assert k_half * 2 >= k_full  # halving at most doubles the time


class TestMStar:
    def test_anchor_value_from_the_paper(self):
        """The paper states the refined value m*(√3/2) = 8."""
        assert theory.m_star(theory.MU_STAR) == 8

    def test_figure8_range(self):
        """Figure 8 spans roughly 5..20 over μ in [0.75, 0.95]."""
        assert theory.m_star(0.75) == 5
        assert 18 <= theory.m_star(0.95) <= 22

    def test_monotone_in_mu(self):
        mus = [0.75 + 0.01 * i for i in range(21)]
        values = [theory.m_star(mu) for mu in mus]
        assert values == sorted(values)

    def test_at_least_kstar_plus_one(self):
        for mu in (0.76, 0.85, theory.MU_STAR, 0.93):
            assert theory.m_star(mu) >= theory.k_star(mu) + 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            theory.m_star(0.5)
        with pytest.raises(ValueError):
            theory.m_star(1.0)

    def test_empirical_cross_check(self):
        """The empirical search never exceeds the analytical reconstruction.

        (It is a lower bound by construction — a finite search can only find
        violations, not prove the property.)  Kept small for test speed.
        """
        est = theory.m_star_empirical(
            theory.MU_STAR, max_m=12, trials_per_m=5, seed=1
        )
        assert 2 <= est <= max(12, theory.m_star(theory.MU_STAR))


class TestInefficiencyBound:
    def test_infinite_without_t1_area(self):
        assert theory.inefficiency_bound(theory.LAMBDA_STAR, 0.0, 1.0, 1.0, 8) == float(
            "inf"
        )

    def test_at_least_one(self):
        value = theory.inefficiency_bound(theory.LAMBDA_STAR, 4.0, 1.0, 1.0, 8)
        assert value >= 1.0

    def test_decreasing_in_other_areas(self):
        lam = theory.LAMBDA_STAR
        loose = theory.inefficiency_bound(lam, 4.0, 0.0, 0.0, 16)
        tight = theory.inefficiency_bound(lam, 4.0, 3.0, 3.0, 16)
        assert tight <= loose
