"""Package-level tests: exceptions hierarchy, Scheduler interface, public API exports."""

from __future__ import annotations

import pytest

import repro
from repro import (
    InfeasibleError,
    InvalidScheduleError,
    ModelError,
    MonotonicityError,
    ReproError,
    Scheduler,
    SchedulingError,
    SearchError,
    mixed_instance,
)


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ModelError,
            MonotonicityError,
            InvalidScheduleError,
            InfeasibleError,
            SchedulingError,
            SearchError,
        ):
            assert issubclass(exc, ReproError)

    def test_model_errors_are_value_errors(self):
        assert issubclass(ModelError, ValueError)
        assert issubclass(MonotonicityError, ModelError)

    def test_catching_base_class(self):
        from repro import MalleableTask

        with pytest.raises(ReproError):
            MalleableTask("t", [])


class TestSchedulerInterface:
    def test_callable_and_makespan_helpers(self, small_instance):
        from repro import SequentialLPTScheduler

        scheduler = SequentialLPTScheduler()
        schedule = scheduler(small_instance)
        assert schedule.makespan() == pytest.approx(scheduler.makespan(small_instance))

    def test_abstract_base_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            Scheduler()  # type: ignore[abstract]


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing name {name!r}"

    def test_headline_guarantee_is_exposed(self):
        assert repro.theory.overall_guarantee() == pytest.approx(3**0.5)

    def test_docstring_quickstart_is_accurate(self):
        """The usage claimed in the package docstring actually works."""
        instance = mixed_instance(num_tasks=10, num_procs=8, seed=0)
        schedule = repro.MRTScheduler().schedule(instance)
        assert schedule.makespan() > 0
        assert schedule.is_complete()

    def test_extensions_importable(self):
        from repro.extensions import PrecedenceScheduler, random_task_tree

        assert PrecedenceScheduler.name == "precedence-cp"
        assert callable(random_task_tree)
