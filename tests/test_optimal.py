"""Tests for the exact branch-and-bound optimum (repro.baselines.optimal)."""

from __future__ import annotations

import pytest

from repro import Instance, MalleableTask, ModelError, mixed_instance
from repro.baselines.optimal import BranchAndBoundOptimal, optimal_makespan, optimal_schedule
from repro.lower_bounds import best_lower_bound


class TestGuards:
    def test_too_many_tasks_rejected(self):
        inst = mixed_instance(12, 4, seed=0)
        with pytest.raises(ModelError):
            optimal_schedule(inst)

    def test_too_many_procs_rejected(self):
        inst = mixed_instance(4, 32, seed=0)
        with pytest.raises(ModelError):
            optimal_schedule(inst)


class TestExactness:
    def test_single_task(self):
        inst = Instance([MalleableTask.constant_work("t", 8.0, 4)], 4)
        assert optimal_makespan(inst) == pytest.approx(2.0)

    def test_two_identical_rigid_tasks(self):
        inst = Instance([MalleableTask.rigid("a", 3.0, 2), MalleableTask.rigid("b", 3.0, 2)], 2)
        assert optimal_makespan(inst) == pytest.approx(3.0)

    def test_stacking_beats_side_by_side_when_needed(self):
        """Three unit tasks on two processors: the optimum is 2, not 3."""
        inst = Instance([MalleableTask.rigid(f"t{i}", 1.0, 2) for i in range(3)], 2)
        assert optimal_makespan(inst) == pytest.approx(2.0)

    def test_malleable_tradeoff(self):
        """Hand-computable instance where parallelising one task is optimal.

        Task A: t(1)=4, t(2)=2.4; Task B: t(1)=2, t(2)=1.6 on m=2.
        Candidates: both sequential -> max(4, 2) = 4;
        A on 2 procs then B sequential -> 2.4 + 2 = 4.4;  B after A on 1 proc -> 4;
        A parallel, B parallel stacked -> 2.4 + 1.6 = 4.0;
        best is 4.0.
        """
        inst = Instance(
            [MalleableTask("A", [4.0, 2.4]), MalleableTask("B", [2.0, 1.6])], 2
        )
        assert optimal_makespan(inst) == pytest.approx(4.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_never_below_lower_bound(self, seed):
        inst = mixed_instance(5, 4, seed=seed)
        opt = optimal_makespan(inst)
        assert opt >= best_lower_bound(inst) - 1e-6

    @pytest.mark.parametrize("seed", range(4))
    def test_never_above_any_heuristic(self, seed):
        from repro import GangScheduler, MRTScheduler, SequentialLPTScheduler

        inst = mixed_instance(5, 4, seed=100 + seed)
        opt = optimal_makespan(inst)
        for scheduler in (MRTScheduler(), SequentialLPTScheduler(), GangScheduler()):
            assert opt <= scheduler.schedule(inst).makespan() + 1e-6

    def test_scheduler_wrapper(self):
        inst = mixed_instance(4, 4, seed=3)
        schedule = BranchAndBoundOptimal().schedule(inst)
        schedule.validate()
        assert schedule.is_complete()
