"""Tests for the Malleable List Algorithm (Section 3.1, Theorem 1)."""

from __future__ import annotations

import pytest

from repro import MalleableListScheduler, best_lower_bound, mixed_instance
from repro.core.malleable_list import MalleableListDual, malleable_list_guarantee
from repro.lower_bounds import canonical_area_lower_bound


class TestGuaranteeFormula:
    def test_values(self):
        assert malleable_list_guarantee(1) == pytest.approx(1.0)
        assert malleable_list_guarantee(2) == pytest.approx(4.0 / 3.0)
        assert malleable_list_guarantee(3) == pytest.approx(1.5)
        assert malleable_list_guarantee(1_000_000) == pytest.approx(2.0, abs=1e-5)

    def test_monotone_increasing(self):
        values = [malleable_list_guarantee(m) for m in range(1, 50)]
        assert values == sorted(values)

    def test_invalid(self):
        with pytest.raises(ValueError):
            malleable_list_guarantee(0)


class TestMalleableListDual:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("m", [2, 4, 8, 16])
    def test_accepted_guess_meets_theorem1_bound(self, seed, m):
        """Any accepted guess yields a schedule within (2 − 2/(m+1))·guess."""
        inst = mixed_instance(12, m, seed=seed)
        dual = MalleableListDual()
        lb = canonical_area_lower_bound(inst)
        for factor in (1.0, 1.2, 1.6, 2.5, 5.0):
            guess = lb * factor
            schedule = dual.run(inst, guess)
            if schedule is not None:
                schedule.validate()
                assert schedule.makespan() <= malleable_list_guarantee(m) * guess + 1e-6

    def test_rejects_infeasible_guess(self, medium_instance):
        dual = MalleableListDual()
        assert dual.run(medium_instance, 1e-9) is None

    def test_rejection_is_sound(self):
        """A rejected guess is below the optimum (checked against the lower bound).

        The dual only rejects via Property 2 / γ-existence which are valid
        infeasibility certificates, so any rejected guess must be smaller
        than every achievable makespan; we verify it is at least below the
        scheduler's own final makespan divided by the guarantee.
        """
        inst = mixed_instance(15, 8, seed=2)
        scheduler = MalleableListScheduler()
        schedule = scheduler.schedule(inst)
        dual = MalleableListDual()
        opt_upper = schedule.makespan()  # an upper bound on OPT
        for outcome in scheduler.last_result.trace:
            if not outcome.accepted:
                assert outcome.guess <= opt_upper + 1e-6

    def test_parallel_tasks_all_start_at_zero(self, medium_instance):
        dual = MalleableListDual()
        guess = medium_instance.upper_bound() / 3
        schedule = dual.run(medium_instance, guess)
        if schedule is None:
            pytest.skip("guess rejected")
        for entry in schedule.entries:
            if entry.num_procs >= 2:
                assert entry.start == pytest.approx(0.0)

    def test_accepts_generous_guess(self, medium_instance):
        dual = MalleableListDual()
        assert dual.run(medium_instance, medium_instance.upper_bound()) is not None


class TestMalleableListScheduler:
    @pytest.mark.parametrize("seed", range(5))
    def test_ratio_within_guarantee(self, seed):
        inst = mixed_instance(20, 12, seed=seed)
        scheduler = MalleableListScheduler(eps=1e-3)
        schedule = scheduler.schedule(inst)
        lb = best_lower_bound(inst)
        guarantee = malleable_list_guarantee(12) * (1 + 2e-3)
        assert schedule.makespan() <= guarantee * lb * (1 + 1e-6) or (
            # the guarantee is relative to OPT >= lb; ratio to lb may exceed it
            # only if lb < OPT, so also allow a small slack factor
            schedule.makespan() <= guarantee * scheduler.last_result.best_guess + 1e-6
        )

    def test_schedule_is_complete_and_valid(self, small_instance):
        schedule = MalleableListScheduler().schedule(small_instance)
        schedule.validate()
        assert schedule.is_complete()

    def test_search_metadata_recorded(self, small_instance):
        scheduler = MalleableListScheduler()
        scheduler.schedule(small_instance)
        assert scheduler.last_result is not None
        assert scheduler.last_result.iterations > 0
