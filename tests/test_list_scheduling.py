"""Tests for the contiguous list-scheduling machinery (repro.core.list_scheduling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Allotment, Instance, MalleableTask
from repro.core.list_scheduling import (
    compute_levels,
    contiguous_list_schedule,
    sliding_window_max,
)
from repro.exceptions import SchedulingError


class TestSlidingWindowMax:
    def test_window_one_is_identity(self, rng):
        values = rng.normal(size=20)
        assert np.allclose(sliding_window_max(values, 1), values)

    def test_window_full_is_global_max(self, rng):
        values = rng.normal(size=20)
        assert sliding_window_max(values, 20)[0] == pytest.approx(values.max())

    @pytest.mark.parametrize("width", [1, 2, 3, 5, 7])
    def test_matches_naive(self, rng, width):
        values = rng.normal(size=30)
        fast = sliding_window_max(values, width)
        naive = np.array(
            [values[s : s + width].max() for s in range(values.size - width + 1)]
        )
        assert np.allclose(fast, naive)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sliding_window_max(np.zeros(3), 0)
        with pytest.raises(ValueError):
            sliding_window_max(np.zeros(3), 4)


@pytest.fixture
def rigid_instance() -> Instance:
    tasks = [
        MalleableTask.rigid("w4", 2.0, 8),
        MalleableTask.rigid("w3", 1.5, 8),
        MalleableTask.rigid("w2", 1.0, 8),
        MalleableTask.rigid("s1", 0.8, 8),
        MalleableTask.rigid("s2", 0.6, 8),
    ]
    return Instance(tasks, 8)


def widths_allotment(inst: Instance, widths: list[int]) -> Allotment:
    return Allotment(inst, widths)


class TestContiguousListSchedule:
    def test_produces_valid_schedule(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [4, 3, 2, 1, 1])
        sched = contiguous_list_schedule(allot, range(5))
        sched.validate()
        assert sched.is_complete()

    def test_first_tasks_start_at_zero_leftmost(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [4, 3, 2, 1, 1])
        sched = contiguous_list_schedule(allot, range(5))
        e0 = sched.entry_for(0)
        e1 = sched.entry_for(1)
        assert e0.start == 0.0 and e0.first_proc == 0
        assert e1.start == 0.0 and e1.first_proc == 4

    def test_second_level_task_rests_on_support(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [4, 3, 2, 1, 1])
        sched = contiguous_list_schedule(allot, range(5))
        # width-2 task cannot fit next to 4+3 at time 0 (only 1 processor left)
        e2 = sched.entry_for(2)
        assert e2.start > 0.0
        supports = [
            e
            for e in sched.entries
            if e.end == pytest.approx(e2.start)
            and max(e.first_proc, e2.first_proc)
            < min(e.first_proc + e.num_procs, e2.first_proc + e2.num_procs)
        ]
        assert supports, "a second-level task must rest on an earlier task"

    def test_order_subset_schedules_partially(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [4, 3, 2, 1, 1])
        sched = contiguous_list_schedule(allot, [0, 1])
        assert len(sched) == 2
        sched.validate(require_complete=False)

    def test_duplicate_order_rejected(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [4, 3, 2, 1, 1])
        with pytest.raises(SchedulingError):
            contiguous_list_schedule(allot, [0, 0, 1])

    def test_start_offset(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [4, 3, 2, 1, 1])
        sched = contiguous_list_schedule(allot, range(5), start_offset=5.0)
        assert min(e.start for e in sched.entries) == pytest.approx(5.0)

    def test_initial_avail_profile(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [1, 1, 1, 1, 1])
        avail = np.array([0.0, 0.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0])
        sched = contiguous_list_schedule(allot, range(5), initial_avail=avail)
        # the two free processors get the first two tasks at time 0
        starts = sorted(e.start for e in sched.entries)
        assert starts[0] == 0.0 and starts[1] == 0.0

    def test_initial_avail_wrong_shape(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [1, 1, 1, 1, 1])
        with pytest.raises(SchedulingError):
            contiguous_list_schedule(allot, range(5), initial_avail=np.zeros(3))

    def test_makespan_at_least_area_bound(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [4, 3, 2, 1, 1])
        sched = contiguous_list_schedule(allot, range(5))
        assert sched.makespan() >= allot.area_bound() - 1e-9


class TestComputeLevels:
    def test_levels_of_simple_stack(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [8, 8, 8, 8, 8])
        sched = contiguous_list_schedule(allot, range(5))
        levels = compute_levels(sched)
        assert sorted(levels.values()) == [1, 2, 3, 4, 5]

    def test_first_level_is_start_zero(self, rigid_instance):
        allot = widths_allotment(rigid_instance, [4, 3, 2, 1, 1])
        sched = contiguous_list_schedule(allot, range(5))
        levels = compute_levels(sched)
        for entry in sched.entries:
            if entry.start == 0.0:
                assert levels[entry.task_index] == 1
            else:
                assert levels[entry.task_index] >= 2

    def test_empty_schedule(self, rigid_instance):
        from repro.model.schedule import Schedule

        assert compute_levels(Schedule(rigid_instance)) == {}
