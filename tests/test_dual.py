"""Tests for the dual-approximation search driver (repro.core.dual)."""

from __future__ import annotations

import pytest

from repro import Instance, MalleableTask, Schedule, SearchError
from repro.core.dual import dual_search
from repro.baselines.gang import GangScheduler


class PerfectGangDual:
    """Toy dual 1-approximation: accepts iff the gang schedule fits the guess."""

    rho = 1.0

    def __init__(self) -> None:
        self.calls: list[float] = []

    def run(self, instance: Instance, guess: float) -> Schedule | None:
        self.calls.append(guess)
        schedule = GangScheduler().schedule(instance)
        if schedule.makespan() <= guess * self.rho + 1e-12:
            return schedule
        return None


class AlwaysRejectDual:
    rho = 1.0

    def run(self, instance: Instance, guess: float) -> Schedule | None:
        return None


@pytest.fixture
def gang_instance() -> Instance:
    tasks = [MalleableTask.constant_work(f"t{i}", float(i + 1), 4) for i in range(4)]
    return Instance(tasks, 4)


class TestDualSearch:
    def test_converges_to_dual_optimum(self, gang_instance):
        """With a perfect dual, the search converges to the gang makespan."""
        gang_makespan = GangScheduler().schedule(gang_instance).makespan()
        result = dual_search(PerfectGangDual(), gang_instance, eps=1e-4)
        assert result.schedule.makespan() == pytest.approx(gang_makespan)
        assert result.best_guess <= gang_makespan * (1 + 1e-3)

    def test_trace_is_recorded(self, gang_instance):
        result = dual_search(PerfectGangDual(), gang_instance, eps=1e-3)
        assert result.iterations == len(result.trace) > 0
        assert any(o.accepted for o in result.trace)

    def test_rejections_raise_search_error(self, gang_instance):
        with pytest.raises(SearchError):
            dual_search(AlwaysRejectDual(), gang_instance)

    def test_invalid_eps(self, gang_instance):
        with pytest.raises(ValueError):
            dual_search(PerfectGangDual(), gang_instance, eps=0.0)

    def test_respects_explicit_bounds(self, gang_instance):
        gang_makespan = GangScheduler().schedule(gang_instance).makespan()
        result = dual_search(
            PerfectGangDual(),
            gang_instance,
            eps=1e-3,
            lower_bound=gang_makespan / 4,
            upper_bound=gang_makespan * 4,
        )
        assert result.lower_bound == pytest.approx(gang_makespan / 4)
        assert result.schedule.makespan() == pytest.approx(gang_makespan)

    def test_accepting_lower_bound_short_circuits(self, gang_instance):
        """If the lower bound itself is accepted the search stops immediately."""
        gang_makespan = GangScheduler().schedule(gang_instance).makespan()
        dual = PerfectGangDual()
        result = dual_search(
            dual, gang_instance, eps=1e-3, lower_bound=gang_makespan * 2
        )
        assert result.schedule.makespan() == pytest.approx(gang_makespan)
        # upper bound accepted + lower bound accepted: exactly two probes
        assert len(dual.calls) == 2

    def test_grows_upper_bound_when_needed(self, gang_instance):
        """A too-small explicit upper bound is grown until accepted."""
        result = dual_search(
            PerfectGangDual(), gang_instance, eps=1e-3, upper_bound=1e-3
        )
        gang_makespan = GangScheduler().schedule(gang_instance).makespan()
        assert result.schedule.makespan() == pytest.approx(gang_makespan)
