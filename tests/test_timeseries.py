"""Time-series ring, SLO burn-rate engine and health state machine.

Unit coverage for :mod:`repro.obs.timeseries` / :mod:`repro.obs.slo` /
:mod:`repro.obs.health`, the injectable-clock tracing regression, a
Hypothesis property tying windowed percentiles to the full-history
histogram, and a 2-shard overload → degraded → recovery integration test
against the real router HTTP surface — all on fake clocks, no real
sleeps.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    SLO,
    LatencyHistogram,
    MetricRing,
    Tracer,
    WindowDelta,
    evaluate_health,
    evaluate_slo,
    state_value,
    window_status,
)
from repro.obs.health import (
    HEALTH_STATES,
    QUEUE_GROWTH_MIN_DEPTH,
    REASON_FAST_BURN_AVAILABILITY,
    REASON_FAST_BURN_P99,
    REASON_FLEET_DOWN,
    REASON_QUEUE_GROWTH,
    REASON_SHARDS_DEAD,
    REASON_SUSTAINED_HEADROOM,
    STATE_DEGRADED,
    STATE_FAILING,
    STATE_OK,
)
from repro.obs.histogram import BOUNDS_MS
from repro.obs.names import SPAN_PARSE
from repro.obs.slo import P99_BUDGET
from repro.obs.timeseries import gauge_stats, histogram_delta
from repro.service.cluster.router import ShardRouterServer
from repro.service.cluster.supervisor import ClusterSupervisor
from repro.service.cluster.worker import ShardSpec
from repro.service.client import ServiceClient
from repro.service.core import SchedulerService


class FakeClock:
    """Deterministic monotonic clock for rings, tracers and services."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def hist_of(values) -> LatencyHistogram:
    out = LatencyHistogram()
    for value in values:
        out.observe(value)
    return out


# ---------------------------------------------------------------------- #
# histogram_delta / fraction_over
# ---------------------------------------------------------------------- #
class TestHistogramDelta:
    def test_delta_is_exact_bucket_subtraction(self):
        first = [10.0, 20.0, 30.0]
        second = [900.0, 1000.0, 40.0, 0.5]
        start = hist_of(first)
        end = hist_of(first + second)
        delta = histogram_delta(start.as_dict(), end.as_dict())
        assert delta.counts == hist_of(second).counts
        assert delta.count == len(second)
        assert delta.sum_ms == pytest.approx(sum(second))

    def test_missing_endpoints(self):
        snapshot = hist_of([5.0]).as_dict()
        assert histogram_delta(None, None).count == 0
        assert histogram_delta(snapshot, None).count == 0
        assert histogram_delta(None, snapshot).count == 1

    def test_counter_reset_uses_end_snapshot(self):
        # A shard restart zeroes its cumulative histogram: the old baseline
        # predates the restart, so the end snapshot is the window content.
        start = hist_of([1.0] * 100)
        end = hist_of([50.0, 60.0])
        delta = histogram_delta(start.as_dict(), end.as_dict())
        assert delta.counts == end.counts
        assert delta.count == 2

    def test_window_min_max_bracket_the_true_extremes(self):
        start = hist_of([10.0])
        window = [3.0, 700.0]
        end = hist_of([10.0] + window)
        delta = histogram_delta(start.as_dict(), end.as_dict())
        assert delta.min_ms <= min(window)
        assert delta.max_ms >= max(window)


class TestFractionOver:
    def test_empty_is_zero(self):
        assert LatencyHistogram().fraction_over(100.0) == 0.0

    def test_extremes(self):
        hist = hist_of([1.0] * 10)
        assert hist.fraction_over(10_000.0) == 0.0
        assert hist.fraction_over(0.0) == pytest.approx(1.0, abs=0.05)

    def test_whole_buckets_above_are_counted_exactly(self):
        hist = hist_of([1.0] * 90 + [900.0] * 10)
        # 100ms separates the two populations by many buckets, so the
        # linear split of the covering bucket cannot blur the answer.
        assert hist.fraction_over(100.0) == pytest.approx(0.10)

    def test_monotone_in_threshold(self):
        hist = hist_of([1.0, 5.0, 25.0, 125.0, 625.0])
        fractions = [hist.fraction_over(t) for t in (0.5, 3.0, 20.0, 500.0)]
        assert fractions == sorted(fractions, reverse=True)


# ---------------------------------------------------------------------- #
# MetricRing windows
# ---------------------------------------------------------------------- #
class TestGaugeStats:
    def test_trend_summary(self):
        stats = gauge_stats([3.0, 9.0, 6.0])
        assert stats == {"first": 3.0, "last": 6.0, "max": 9.0, "mean": 6.0}

    def test_empty_series_is_all_zero(self):
        assert gauge_stats([]) == {
            "first": 0.0, "last": 0.0, "max": 0.0, "mean": 0.0,
        }


class TestMetricRing:
    def test_rejects_degenerate_configuration(self):
        with pytest.raises(ValueError):
            MetricRing(1)
        with pytest.raises(ValueError):
            MetricRing(8, interval=0.0)

    def test_young_process_uses_zero_baseline(self):
        clock = FakeClock()
        ring = MetricRing(16, interval=None, clock=clock)
        ring.record({}, {"requests_total": 7}, hist_of([10.0] * 7).as_dict(), t=5.0)
        delta = ring.window(60.0, now=10.0)
        # Nothing was ever evicted: the cumulative totals genuinely all
        # happened inside the window.
        assert delta.counter("requests_total") == 7
        assert delta.latency.count == 7

    def test_baseline_is_newest_sample_at_or_before_cutoff(self):
        clock = FakeClock()
        ring = MetricRing(16, interval=None, clock=clock)
        ring.record({}, {"requests_total": 10}, hist_of([1.0] * 10).as_dict(), t=10.0)
        ring.record({}, {"requests_total": 25}, hist_of([1.0] * 25).as_dict(), t=40.0)
        ring.record({}, {"requests_total": 31}, hist_of([1.0] * 31).as_dict(), t=70.0)
        delta = ring.window(45.0, now=80.0)  # cutoff 35: baseline t=10
        assert delta.counter("requests_total") == 21
        assert delta.samples == 2
        assert delta.duration_s == pytest.approx(60.0)

    def test_counter_reset_falls_back_to_end_value(self):
        clock = FakeClock()
        ring = MetricRing(16, interval=None, clock=clock)
        ring.record({}, {"requests_total": 100}, None, t=10.0)
        ring.record({}, {"requests_total": 4}, None, t=40.0)  # restarted
        assert ring.window(60.0, now=50.0).counter("requests_total") == 4

    def test_wraparound_does_not_bill_evicted_history(self):
        clock = FakeClock()
        ring = MetricRing(4, interval=None, clock=clock)
        for i in range(10):  # cumulative counter 0,10,...,90
            ring.record({}, {"requests_total": 10 * i}, None, t=float(i))
        delta = ring.window(1000.0, now=9.0)
        # Retained samples are t=6..9; the oldest retained (t=6, value 60)
        # is the baseline, so the window truncates to the ring's span
        # instead of attributing the evicted 60 requests to it.
        assert delta.counter("requests_total") == 30
        assert delta.duration_s == pytest.approx(3.0)
        assert delta.samples == 3

    def test_wrapped_ring_consumes_oldest_retained_as_baseline(self):
        clock = FakeClock()
        ring = MetricRing(2, interval=None, clock=clock)
        for i in range(5):
            ring.record({}, {"requests_total": i}, None, t=float(i))
        # Retained: t=3 (value 3) and t=4 (value 4).  The window covers
        # both, so the oldest retained becomes the baseline, not a point.
        delta = ring.window(100.0, now=4.0)
        assert delta.counter("requests_total") == 1
        assert delta.samples == 1
        assert delta.duration_s == pytest.approx(1.0)

    def test_stale_ring_yields_empty_window(self):
        clock = FakeClock()
        ring = MetricRing(8, interval=None, clock=clock)
        ring.record({}, {"requests_total": 5}, None, t=1.0)
        delta = ring.window(10.0, now=1000.0)  # sampling stopped long ago
        assert delta.samples == 0
        assert delta.counter("requests_total") == 0

    def test_maybe_sample_gates_on_the_interval(self):
        clock = FakeClock()
        ring = MetricRing(8, interval=5.0, clock=clock)
        collect = lambda: ({}, {"requests_total": 1}, None)  # noqa: E731
        assert ring.maybe_sample(collect) is False  # not due yet
        clock.advance(5.0)
        assert ring.maybe_sample(collect) is True
        assert ring.maybe_sample(collect) is False
        assert len(ring) == 1

    def test_idle_gap_takes_one_catchup_sample_not_a_burst(self):
        # Clock skew / long idle: rescheduling relative to *now* means a
        # 10-interval gap yields one sample, not ten back-to-back.
        clock = FakeClock()
        ring = MetricRing(8, interval=1.0, clock=clock)
        collect = lambda: ({}, {}, None)  # noqa: E731
        clock.advance(10.0)
        assert ring.maybe_sample(collect) is True
        assert ring.maybe_sample(collect) is False
        clock.advance(0.5)
        assert ring.maybe_sample(collect) is False
        clock.advance(0.5)
        assert ring.maybe_sample(collect) is True
        assert len(ring) == 2

    def test_interval_none_disables_interval_sampling(self):
        ring = MetricRing(8, interval=None, clock=FakeClock())
        assert ring.maybe_sample(lambda: ({}, {}, None)) is False
        assert len(ring) == 0

    def test_history_downsamples_to_one_point_per_step(self):
        clock = FakeClock()
        ring = MetricRing(64, interval=None, clock=clock)
        for i in range(1, 13):
            ring.record(
                {"queue_depth": float(i)},
                {"requests_total": 10 * i},
                hist_of([5.0] * (10 * i)).as_dict(),
                t=float(i),
            )
        doc = ring.history(12.0, 4.0, now=12.0)
        # One point per step bucket (its newest sample), young process =
        # zero baseline for the first point.
        assert [p["t"] for p in doc["points"]] == [3.0, 7.0, 11.0, 12.0]
        # Counter deltas between consecutive points partition the total.
        deltas = [p["deltas"]["requests_total"] for p in doc["points"]]
        assert deltas == [30, 40, 40, 10]
        assert sum(deltas) == 120
        assert [p["latency"]["count"] for p in doc["points"]] == deltas
        assert doc["samples"] == 12 and doc["capacity"] == 64

    def test_history_wrapped_prev_rule_matches_window(self):
        clock = FakeClock()
        ring = MetricRing(4, interval=None, clock=clock)
        for i in range(10):
            ring.record({}, {"requests_total": 10 * i}, None, t=float(i))
        doc = ring.history(1000.0, 1.0, now=9.0)
        total = sum(p["deltas"]["requests_total"] for p in doc["points"])
        assert total == ring.window(1000.0, now=9.0).counter("requests_total")


class TestWindowDelta:
    def make(self, n: int) -> WindowDelta:
        return WindowDelta(
            duration_s=60.0,
            samples=2,
            counters={"requests_total": n, "rejections": 1},
            gauges={"queue_depth": {"first": 1.0, "last": 2.0, "max": 3.0, "mean": 1.5}},
            latency=hist_of([10.0] * n),
        )

    def test_dict_roundtrip(self):
        delta = self.make(5)
        clone = WindowDelta.from_dict(json.loads(json.dumps(delta.as_dict())))
        assert clone.as_dict() == delta.as_dict()

    def test_merge_sums_counters_gauges_and_buckets(self):
        merged = WindowDelta.merged([self.make(5), self.make(7).as_dict()])
        assert merged.counter("requests_total") == 12
        assert merged.counter("rejections") == 2
        assert merged.latency.count == 12
        # A fleet's queue depth is the sum of its shards' queue depths.
        assert merged.gauges["queue_depth"]["last"] == pytest.approx(4.0)
        assert merged.duration_s == pytest.approx(60.0)


# ---------------------------------------------------------------------- #
# SLO burn rates
# ---------------------------------------------------------------------- #
def slo_status_for(
    fast: WindowDelta, slow: WindowDelta, slo: SLO | None = None
) -> dict:
    return evaluate_slo(slo or SLO(p99_ms=100.0), fast, slow)


class TestSLO:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(p99_ms=0.0)
        with pytest.raises(ValueError):
            SLO(availability=1.0)
        with pytest.raises(ValueError):
            SLO(fast_window_s=600.0, slow_window_s=60.0)
        with pytest.raises(ValueError):
            SLO(fast_burn_threshold=0.0)

    def test_idle_window_burns_nothing(self):
        status = window_status(SLO(), WindowDelta())
        assert status["burn"] == 0.0
        assert status["availability"] == 1.0

    def test_latency_burn_is_fraction_over_divided_by_budget(self):
        delta = WindowDelta(
            duration_s=60.0,
            counters={"requests_total": 100},
            latency=hist_of([10.0] * 90 + [900.0] * 10),
        )
        status = window_status(SLO(p99_ms=100.0), delta)
        assert status["fraction_over_target"] == pytest.approx(0.10)
        assert status["latency_burn"] == pytest.approx(0.10 / P99_BUDGET)

    def test_availability_burn(self):
        delta = WindowDelta(
            duration_s=60.0,
            counters={"requests_total": 990, "rejections": 10},
        )
        status = window_status(SLO(availability=0.999), delta)
        assert status["availability"] == pytest.approx(0.99)
        assert status["availability_burn"] == pytest.approx(10.0)

    def test_breach_flags_compare_burn_to_window_thresholds(self):
        hot = WindowDelta(
            duration_s=60.0,
            counters={"requests_total": 100},
            latency=hist_of([900.0] * 20 + [10.0] * 80),
        )
        cold = WindowDelta(
            duration_s=600.0,
            counters={"requests_total": 1000},
            latency=hist_of([10.0] * 1000),
        )
        status = slo_status_for(hot, cold)
        assert status["fast_breach"] is True
        assert status["slow_breach"] is False
        assert status["compliant"] is False
        assert slo_status_for(cold, cold)["compliant"] is True


# ---------------------------------------------------------------------- #
# health state machine
# ---------------------------------------------------------------------- #
class TestHealth:
    def good(self, n: int = 1000) -> WindowDelta:
        return WindowDelta(
            duration_s=60.0,
            counters={"requests_total": n},
            latency=hist_of([10.0] * n),
        )

    def bad(self, n: int = 100) -> WindowDelta:
        return WindowDelta(
            duration_s=60.0,
            counters={"requests_total": n, "rejections": n // 2},
            latency=hist_of([900.0] * n),
        )

    def test_state_values_index_the_severity_order(self):
        assert HEALTH_STATES == (STATE_OK, STATE_DEGRADED, STATE_FAILING)
        assert [state_value(s) for s in HEALTH_STATES] == [0, 1, 2]

    def test_clean_windows_are_ok(self):
        health = evaluate_health(slo_status_for(self.good(), self.good()))
        assert health["state"] == STATE_OK
        assert health["reasons"] == []

    def test_fast_only_breach_is_degraded_with_grow_hint(self):
        health = evaluate_health(slo_status_for(self.bad(), self.good()))
        assert health["state"] == STATE_DEGRADED
        codes = {r["code"] for r in health["reasons"]}
        assert REASON_FAST_BURN_P99 in codes
        assert REASON_FAST_BURN_AVAILABILITY in codes
        assert health["scale_hint"]["direction"] == "grow"

    def test_both_windows_breached_is_failing(self):
        health = evaluate_health(slo_status_for(self.bad(), self.bad(1000)))
        assert health["state"] == STATE_FAILING

    def test_fleet_down_is_failing_even_with_clean_windows(self):
        health = evaluate_health(
            slo_status_for(WindowDelta(), WindowDelta()), alive=0, shards=2
        )
        assert health["state"] == STATE_FAILING
        assert health["reasons"][0]["code"] == REASON_FLEET_DOWN

    def test_dead_shard_is_degraded(self):
        health = evaluate_health(
            slo_status_for(self.good(), self.good()), alive=1, shards=2
        )
        assert health["state"] == STATE_DEGRADED
        assert health["reasons"][0]["code"] == REASON_SHARDS_DEAD
        assert "1 of 2" in health["reasons"][0]["detail"]

    def test_queue_growth_flags_and_requests_growth(self):
        fast = self.good()
        fast.gauges["queue_depth"] = {
            "first": 2.0,
            "last": 4.0 * QUEUE_GROWTH_MIN_DEPTH,
            "max": 4.0 * QUEUE_GROWTH_MIN_DEPTH,
            "mean": 12.0,
        }
        health = evaluate_health(slo_status_for(fast, self.good()))
        assert health["state"] == STATE_DEGRADED
        assert health["reasons"][0]["code"] == REASON_QUEUE_GROWTH
        assert health["scale_hint"] == {
            "direction": "grow",
            "reasons": [REASON_QUEUE_GROWTH],
        }

    def test_tiny_queues_are_not_growth(self):
        fast = self.good()
        fast.gauges["queue_depth"] = {
            "first": 1.0, "last": 4.0, "max": 4.0, "mean": 2.0,
        }
        assert evaluate_health(slo_status_for(fast, self.good()))["state"] == STATE_OK

    def test_sustained_headroom_hints_shrink(self):
        health = evaluate_health(slo_status_for(self.good(), self.good()))
        assert health["scale_hint"] == {
            "direction": "shrink",
            "reasons": [REASON_SUSTAINED_HEADROOM],
        }

    def test_barely_under_target_holds(self):
        # p99 just under target is not headroom: shrink needs the slow
        # window comfortably (4x) under the objective.
        near = WindowDelta(
            duration_s=600.0,
            counters={"requests_total": 100},
            latency=hist_of([80.0] * 100),
        )
        health = evaluate_health(slo_status_for(self.good(n=100), near))
        assert health["scale_hint"]["direction"] == "hold"

    def test_recovery_is_implicit_in_the_window_algebra(self):
        overloaded = evaluate_health(slo_status_for(self.bad(), self.bad(1000)))
        cleared_fast = evaluate_health(slo_status_for(self.good(), self.bad(1000)))
        cleared_both = evaluate_health(slo_status_for(self.good(), self.good()))
        assert overloaded["state"] == STATE_FAILING
        assert cleared_fast["state"] == STATE_DEGRADED
        assert cleared_both["state"] == STATE_OK


# ---------------------------------------------------------------------- #
# tracing clock regression (durations are monotonic-clock deltas)
# ---------------------------------------------------------------------- #
class TestTracingClock:
    def test_durations_come_from_the_injected_clock(self, monkeypatch):
        import repro.obs.tracing as tracing

        clock = FakeClock(100.0)
        tracer = Tracer("test", clock=clock)
        # Hostile wall clock: steps backwards mid-request (NTP, DST).  The
        # epoch stamp may say anything; durations must not.
        monkeypatch.setattr(tracing.time, "time", lambda: 5_000_000.0)
        trace = tracer.start()
        assert trace.started_at == 5_000_000.0
        monkeypatch.setattr(tracing.time, "time", lambda: 4_000_000.0)
        with trace.span(SPAN_PARSE):
            clock.advance(0.25)
        clock.advance(0.75)
        trace.finish()
        assert trace.duration_ms == pytest.approx(1000.0)
        (span,) = trace.spans
        assert span.start_ms == pytest.approx(0.0)
        assert span.duration_ms == pytest.approx(250.0)

    def test_record_span_offsets_are_relative_to_trace_start(self):
        clock = FakeClock(50.0)
        trace = Tracer("test", clock=clock).start()
        trace.record_span(SPAN_PARSE, 50.5, 51.0)
        (span,) = trace.spans
        assert span.start_ms == pytest.approx(500.0)
        assert span.duration_ms == pytest.approx(500.0)


# ---------------------------------------------------------------------- #
# property: ring windows vs. full-history ground truth
# ---------------------------------------------------------------------- #
LATENCIES = st.lists(
    st.floats(min_value=0.05, max_value=30_000.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=100,
)


class TestWindowPercentileProperty:
    @given(prefix=LATENCIES, recent=LATENCIES)
    @settings(max_examples=60, deadline=None)
    def test_windowed_p99_within_one_bucket_of_ground_truth(
        self, prefix, recent
    ):
        ring = MetricRing(8, interval=None, clock=FakeClock())
        cumulative = hist_of(prefix)
        ring.record({}, {"requests_total": len(prefix)},
                    cumulative.as_dict(), t=10.0)
        for value in recent:
            cumulative.observe(value)
        ring.record({}, {"requests_total": len(prefix) + len(recent)},
                    cumulative.as_dict(), t=50.0)
        delta = ring.window(45.0, now=60.0)  # covers only the second sample
        truth = hist_of(recent)
        # The delta reconstructs the window's distribution bucket-exactly...
        assert delta.latency.counts == truth.counts
        assert delta.counter("requests_total") == len(recent)
        # ...so its percentiles can drift from the ground truth only by
        # min/max clamping inside one log-sqrt2 bucket.
        for q in (50.0, 99.0):
            windowed = delta.latency.percentile(q)
            exact = truth.percentile(q)
            assert abs(
                LatencyHistogram._bucket_index(windowed)
                - LatencyHistogram._bucket_index(exact)
            ) <= 1

    @given(
        increments=st.lists(st.integers(0, 50), min_size=6, max_size=40),
        capacity=st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_wraparound_window_never_exceeds_retained_increments(
        self, increments, capacity
    ):
        ring = MetricRing(capacity, interval=None, clock=FakeClock())
        total = 0
        cumulative = []
        for i, inc in enumerate(increments):
            total += inc
            cumulative.append(total)
            ring.record({}, {"requests_total": total}, None, t=float(i))
        now = float(len(increments) - 1)
        delta = ring.window(10 * len(increments), now=now)
        if len(increments) > capacity:  # wrapped: oldest retained = baseline
            expected = cumulative[-1] - cumulative[-capacity]
        else:  # young process: zero baseline, totals are genuine
            expected = cumulative[-1]
        assert delta.counter("requests_total") == expected

    @given(gap=st.floats(min_value=1.0, max_value=10_000.0))
    @settings(max_examples=30, deadline=None)
    def test_clock_gap_never_produces_a_sample_burst(self, gap):
        clock = FakeClock()
        ring = MetricRing(8, interval=1.0, clock=clock)
        clock.advance(gap)
        samples = sum(
            ring.maybe_sample(lambda: ({}, {}, None)) for _ in range(5)
        )
        assert samples == 1  # one catch-up sample, however long the gap


# ---------------------------------------------------------------------- #
# 2-shard integration: overload -> degraded -> recovery, over real HTTP
# ---------------------------------------------------------------------- #
def raw_get(url: str, path: str) -> tuple[int, dict]:
    conn = http.client.HTTPConnection(url.replace("http://", ""), timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        return response.status, json.loads(body) if body else {}
    finally:
        conn.close()


@pytest.fixture
def cluster():
    supervisor = ClusterSupervisor(
        2,
        spec=ShardSpec(workers=1, sample_interval=None, slo_p99_ms=100.0),
        backend="thread",
        respawn=False,
        # Zero cache age: /healthz re-evaluates on every probe instead of
        # serving the monitor-cached document (the monitor is off here).
        health_interval=0.0,
    ).start()
    server = ShardRouterServer(
        ("127.0.0.1", 0), supervisor, slo=SLO(p99_ms=100.0)
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield supervisor, server
    server.close()
    supervisor.close()


def shard_services(supervisor) -> list:
    return [
        handle._server.service
        for _, handle in sorted(supervisor._handles.items())
    ]


def install_overload(service, clock: FakeClock) -> None:
    """Synthetic timeline: 600s of good traffic, then a 60s overload.

    Cumulative snapshots recorded straight into the shard's ring on the
    injected clock — the slow window stays healthy (burn < 2) while the
    fast window burns two orders of magnitude too fast.
    """
    ring = service.history
    ring._clock = clock
    good = hist_of([10.0] * 2000)
    ring.record({"queue_depth": 0.0},
                {"requests_total": 0, "rejections": 0},
                LatencyHistogram().as_dict(), t=1.0)
    ring.record({"queue_depth": 1.0},
                {"requests_total": 2000, "rejections": 0},
                good.as_dict(), t=530.0)
    for _ in range(5):
        good.observe(10.0)
    ring.record({"queue_depth": 1.0},
                {"requests_total": 2005, "rejections": 0},
                good.as_dict(), t=550.0)
    for _ in range(10):
        good.observe(900.0)
    ring.record({"queue_depth": 2.0},
                {"requests_total": 2015, "rejections": 3},
                good.as_dict(), t=590.0)
    clock.t = 600.0


class TestClusterHealthIntegration:
    def test_overload_degrades_then_recovers(self, cluster):
        supervisor, server = cluster
        clocks = []
        for service in shard_services(supervisor):
            clock = FakeClock()
            install_overload(service, clock)
            clocks.append(clock)

        # Fast window burning, slow window still inside budget: /healthz
        # reports degraded (200 — the service still serves) with the
        # fast-burn reasons, and the aggregate asks for growth.
        status, body = raw_get(server.url, "/healthz")
        assert status == 200
        assert body["status"] == STATE_DEGRADED
        # Backward-compatible body: the pre-existing keys survive.
        assert {"status", "shards", "alive", "backend", "uptime_seconds",
                "reasons", "scale_hint"} <= set(body)
        assert body["shards"] == 2 and body["alive"] == 2
        codes = {r["code"] for r in body["reasons"]}
        assert REASON_FAST_BURN_P99 in codes
        assert body["scale_hint"]["direction"] == "grow"

        metrics = ServiceClient(server.url, retries=0).metrics()
        assert metrics["health"]["state"] == STATE_DEGRADED
        assert metrics["scale_hint"]["direction"] == "grow"
        assert metrics["slo"]["fast_breach"] is True
        assert metrics["slo"]["slow_breach"] is False
        # Cluster burn is evaluated on the *merged* deltas: both shards'
        # fast windows contribute, doubling counts but not the fractions.
        fast = metrics["slo"]["windows"]["fast"]
        assert fast["requests"] == 30 and fast["rejections"] == 6

        # The history endpoint serves per-shard time series plus the same
        # merged evaluation, in one fan-out.
        history = ServiceClient(server.url, retries=0).metrics_history(
            window=600.0, step=60.0
        )
        assert set(history["shards"]) == {"0", "1"}
        for doc in history["shards"].values():
            assert doc["points"], "each shard serves downsampled points"
            assert doc["window_s"] == 600.0
        assert history["slo"]["fast_breach"] is True
        assert history["health"]["state"] == STATE_DEGRADED

        # Load stops; ~700s later (just over one slow window) both windows
        # have rotated past the incident and the fleet is ok again — no
        # reset hook, purely the window algebra.
        for service, clock in zip(shard_services(supervisor), clocks):
            ring = service.history
            last = ring.samples()[-1]
            ring.record(last.gauges, last.counters, last.latency, t=1250.0)
            ring.record({"queue_depth": 0.0}, last.counters, last.latency,
                        t=1290.0)
            clock.t = 1300.0
        status, body = raw_get(server.url, "/healthz")
        assert status == 200
        assert body["status"] == STATE_OK
        assert body["reasons"] == []
        assert body["scale_hint"]["direction"] == "hold"

    def test_both_windows_burning_is_failing_503(self, cluster):
        supervisor, server = cluster
        for service in shard_services(supervisor):
            clock = FakeClock()
            ring = service.history
            ring._clock = clock
            ring.record({}, {"requests_total": 0, "rejections": 0},
                        LatencyHistogram().as_dict(), t=1.0)
            hot = hist_of([900.0] * 100 + [10.0] * 50)
            ring.record({}, {"requests_total": 150, "rejections": 150},
                        hot.as_dict(), t=590.0)
            clock.t = 600.0
        status, body = raw_get(server.url, "/healthz")
        assert status == 503
        assert body["status"] == STATE_FAILING
        assert body["alive"] == 2  # failing on burn, not liveness

    def test_one_dead_shard_is_degraded_200(self, cluster):
        supervisor, server = cluster
        dead = supervisor._handles[0]
        dead.stop()
        status, body = raw_get(server.url, "/healthz")
        assert status == 200
        assert body["status"] == STATE_DEGRADED
        assert body["alive"] == 1
        assert REASON_SHARDS_DEAD in {r["code"] for r in body["reasons"]}

    def test_dead_fleet_is_503(self, cluster):
        supervisor, server = cluster
        for handle in supervisor._handles.values():
            handle.stop()
        status, body = raw_get(server.url, "/healthz")
        assert status == 503
        assert body["status"] == STATE_FAILING
        assert body["alive"] == 0
        assert body["reasons"][0]["code"] == REASON_FLEET_DOWN

    def test_history_bad_query_is_400(self, cluster):
        _, server = cluster
        status, body = raw_get(server.url, "/metrics/history?window=-5")
        assert status == 400
        assert "window" in body["error"]


# ---------------------------------------------------------------------- #
# standalone daemon: the service-level blocks (no HTTP, fake clock)
# ---------------------------------------------------------------------- #
class TestServiceSampling:
    def test_metrics_and_history_blocks(self):
        clock = FakeClock()
        service = SchedulerService(
            workers=1,
            sample_interval=None,
            slo=SLO(p99_ms=100.0),
            clock=clock,
        )
        try:
            service.sample_now()
            metrics = service.metrics()
            assert metrics["health"]["state"] == STATE_OK
            assert metrics["slo"]["compliant"] is True
            assert metrics["history"]["samples"] == 1
            document = service.history_document()
            assert document["component"] == "service"
            assert document["window_s"] == service.slo.slow_window_s
            assert document["slo"]["objective"]["p99_ms"] == 100.0
        finally:
            service.close()

    def test_sampling_rides_the_dispatcher_idle_tick(self):
        # With a real (default) clock and a tiny interval the dispatch
        # loop itself must take samples — no extra thread exists to.
        from repro.service.core import ScheduleRequest
        from repro.workloads import uniform_instance

        service = SchedulerService(workers=1, sample_interval=0.01)
        try:
            inst = uniform_instance(num_tasks=4, num_procs=2, seed=7)
            service.schedule(ScheduleRequest(instance=inst))
            deadline = time.monotonic() + 10.0
            while len(service.history) == 0:
                assert time.monotonic() < deadline, (
                    "dispatcher never sampled the metric ring"
                )
                time.sleep(0.01)
            sample = service.history.samples()[-1]
            assert sample.counters["requests_total"] >= 1
        finally:
            service.close()
