"""Tests for the baseline schedulers (listsched, turek, ludwig, gang, sequential)."""

from __future__ import annotations

import pytest

from repro import (
    Allotment,
    GangScheduler,
    Instance,
    LudwigScheduler,
    MalleableTask,
    SequentialLPTScheduler,
    TurekScheduler,
    best_lower_bound,
    mixed_instance,
)
from repro.baselines.listsched import (
    RigidLPTScheduler,
    largest_width_order,
    lpt_order,
    rigid_list_schedule,
)
from repro.baselines.ludwig import select_min_lower_bound_allotment
from repro.baselines.turek import candidate_thresholds, canonical_allotment_for_threshold
from repro.workloads.adversarial import lpt_worst_case_instance


class TestRigidListScheduling:
    def test_lpt_order_sorted_by_time(self, medium_instance):
        allotment = Allotment.sequential(medium_instance)
        order = lpt_order(allotment)
        times = allotment.times()
        assert all(times[a] >= times[b] - 1e-12 for a, b in zip(order, order[1:]))

    def test_largest_width_order(self, medium_instance):
        allotment = Allotment.canonical(
            medium_instance, medium_instance.lower_bound() * 1.2
        )
        if allotment is None:
            pytest.skip("canonical allotment infeasible")
        order = largest_width_order(allotment)
        widths = [allotment[i] for i in order]
        assert widths == sorted(widths, reverse=True)

    def test_rigid_list_schedule_valid(self, medium_instance):
        allotment = Allotment.sequential(medium_instance)
        schedule = rigid_list_schedule(allotment)
        schedule.validate()
        assert schedule.is_complete()

    def test_sequential_lpt_graham_bound(self):
        """LPT on sequential tasks is within 4/3 of the rigid optimum (area bound)."""
        inst = lpt_worst_case_instance(6)
        schedule = SequentialLPTScheduler().schedule(inst)
        area_bound = inst.total_sequential_work() / inst.num_procs
        assert schedule.makespan() <= (4 / 3) * max(
            area_bound, inst.max_sequential_time()
        ) + 1e-9

    def test_rigid_lpt_scheduler_invalid_param(self):
        with pytest.raises(ValueError):
            RigidLPTScheduler(0)

    def test_rigid_lpt_scheduler_clips_to_machine(self, small_instance):
        schedule = RigidLPTScheduler(procs_per_task=1000).schedule(small_instance)
        schedule.validate()
        for entry in schedule.entries:
            assert entry.num_procs == small_instance.num_procs


class TestTurek:
    def test_candidate_thresholds_sorted_unique(self, small_instance):
        values = candidate_thresholds(small_instance)
        assert values == sorted(values)
        assert len(values) == len(set(values))

    def test_candidate_thresholds_capped(self, medium_instance):
        values = candidate_thresholds(medium_instance, max_candidates=10)
        assert len(values) <= 10

    def test_allotment_for_threshold(self, small_instance):
        big = small_instance.max_sequential_time()
        allotment = canonical_allotment_for_threshold(small_instance, big)
        assert allotment is not None
        assert all(p == 1 for p in allotment)

    @pytest.mark.parametrize("seed", range(3))
    def test_valid_and_within_factor_three(self, seed):
        inst = mixed_instance(15, 8, seed=seed)
        scheduler = TurekScheduler(max_candidates=64)
        schedule = scheduler.schedule(inst)
        schedule.validate()
        assert schedule.is_complete()
        assert schedule.makespan() <= 3.0 * best_lower_bound(inst) + 1e-9
        assert scheduler.last_threshold is not None


class TestLudwig:
    def test_allotment_minimises_lower_bound(self, small_instance):
        allotment, value = select_min_lower_bound_allotment(small_instance)
        assert value == pytest.approx(allotment.lower_bound())
        # no canonical allotment of any threshold does better
        for threshold in candidate_thresholds(small_instance):
            other = Allotment.canonical(small_instance, threshold)
            if other is not None:
                assert value <= other.lower_bound() + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_valid_and_within_factor_three(self, seed):
        inst = mixed_instance(15, 8, seed=seed)
        scheduler = LudwigScheduler()
        schedule = scheduler.schedule(inst)
        schedule.validate()
        assert schedule.makespan() <= 3.0 * best_lower_bound(inst) + 1e-9
        assert scheduler.last_lower_bound is not None

    def test_ludwig_vs_turek_same_packer(self, small_instance):
        """Turek enumerates a superset of Ludwig's single candidate."""
        turek = TurekScheduler(packer="ffdh", max_candidates=None).schedule(small_instance)
        ludwig = LudwigScheduler(packer="ffdh").schedule(small_instance)
        assert turek.makespan() <= ludwig.makespan() + 1e-9


class TestGangAndSequential:
    def test_gang_makespan_is_sum_of_parallel_times(self, small_instance):
        schedule = GangScheduler().schedule(small_instance)
        expected = sum(
            t.time(small_instance.num_procs) for t in small_instance.tasks
        )
        assert schedule.makespan() == pytest.approx(expected)

    def test_gang_uses_all_processors(self, small_instance):
        schedule = GangScheduler().schedule(small_instance)
        for entry in schedule.entries:
            assert entry.num_procs == small_instance.num_procs

    def test_sequential_uses_one_processor_each(self, small_instance):
        schedule = SequentialLPTScheduler().schedule(small_instance)
        for entry in schedule.entries:
            assert entry.num_procs == 1

    def test_gang_optimal_for_perfectly_parallel_tasks(self):
        tasks = [MalleableTask.constant_work(f"t{i}", 4.0, 8) for i in range(3)]
        inst = Instance(tasks, 8)
        gang = GangScheduler().schedule(inst)
        assert gang.makespan() == pytest.approx(best_lower_bound(inst))

    def test_sequential_optimal_for_many_tiny_rigid_tasks(self):
        tasks = [MalleableTask.rigid(f"t{i}", 1.0, 4) for i in range(8)]
        inst = Instance(tasks, 4)
        seq = SequentialLPTScheduler().schedule(inst)
        assert seq.makespan() == pytest.approx(2.0)
