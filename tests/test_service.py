"""Tests for the scheduling-as-a-service layer (repro.service)."""

from __future__ import annotations

import queue
import time

import pytest

from repro.exceptions import InvalidScheduleError, ModelError, ServiceOverloadedError
from repro.model.instance import Instance
from repro.model.schedule import Schedule
from repro.registry import ALGORITHMS, make_scheduler
from repro.service import (
    MISS,
    LRUTTLCache,
    ScheduleRequest,
    SchedulerService,
    ServiceClient,
    ServiceHTTPError,
    canonical_json,
    payload_fingerprint,
    request_from_payload,
    start_background_server,
)
from repro.workloads.generators import make_workload

# --------------------------------------------------------------------------- #
# cache primitive
# --------------------------------------------------------------------------- #
class TestLRUTTLCache:
    def test_get_put_and_stats(self):
        cache = LRUTTLCache(4)
        assert cache.get("a") is MISS
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert 0 < cache.stats.hit_rate < 1

    def test_lru_eviction_order(self):
        cache = LRUTTLCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is MISS
        assert cache.get("c") == 3
        assert cache.stats.evictions_lru == 1

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        cache = LRUTTLCache(4, ttl=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        now[0] = 9.0
        assert cache.get("a") == 1
        now[0] = 10.5
        assert cache.get("a") is MISS
        assert cache.stats.evictions_ttl == 1

    def test_purge_expired(self):
        now = [0.0]
        cache = LRUTTLCache(8, ttl=5.0, clock=lambda: now[0])
        cache.put("a", 1)
        cache.put("b", 2)
        now[0] = 6.0
        cache.put("c", 3)
        assert cache.purge_expired() == 2
        assert len(cache) == 1
        # Eager purges are counted separately from lazy on-access expiry.
        assert cache.stats.expired_purged == 2
        assert cache.stats.evictions_ttl == 0
        assert cache.stats.as_dict()["expired_purged"] == 2

    def test_get_if_hit_counts_hits_but_not_misses(self):
        now = [0.0]
        cache = LRUTTLCache(4, ttl=5.0, clock=lambda: now[0])
        assert cache.get_if_hit("a") is MISS
        assert cache.stats.misses == 0  # the probe is not the real lookup
        cache.put("a", 1)
        assert cache.get_if_hit("a") == 1
        assert cache.stats.hits == 1
        now[0] = 6.0
        assert cache.get_if_hit("a") is MISS  # expired: dropped + counted
        assert cache.stats.evictions_ttl == 1
        assert cache.stats.misses == 0

    def test_put_classifies_expired_pops_as_ttl(self):
        """Capacity pops of already-expired entries count as TTL evictions.

        Regression: the capacity loop in ``put`` used to count every popped
        entry as ``evictions_lru``, so a busy shard with a short TTL looked
        capacity-starved in the aggregated ``/metrics`` eviction split.
        """
        now = [0.0]
        cache = LRUTTLCache(2, ttl=5.0, clock=lambda: now[0])
        cache.put("a", 1)
        cache.put("b", 2)
        now[0] = 6.0  # both entries are now past their TTL
        cache.put("c", 3)  # pops "a": expired, so a TTL eviction
        assert cache.stats.evictions_ttl == 1
        assert cache.stats.evictions_lru == 0
        cache.put("d", 4)  # pops "b": also expired
        assert cache.stats.evictions_ttl == 2
        assert cache.stats.evictions_lru == 0
        cache.put("e", 5)  # pops "c": fresh (stored at t=6), a real LRU eviction
        assert cache.stats.evictions_ttl == 2
        assert cache.stats.evictions_lru == 1

    def test_put_without_ttl_counts_lru(self):
        cache = LRUTTLCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.stats.evictions_lru == 1
        assert cache.stats.evictions_ttl == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUTTLCache(0)
        with pytest.raises(ValueError):
            LRUTTLCache(1, ttl=0.0)


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #
class TestFingerprint:
    def test_labels_do_not_matter(self):
        a = Instance.from_profiles([[4.0, 2.0], [6.0, 3.5]], name="a")
        b = Instance.from_profiles([[4.0, 2.0], [6.0, 3.5]], name="b")
        assert a.fingerprint() == b.fingerprint()

    def test_content_matters(self):
        base = Instance.from_profiles([[4.0, 2.0], [6.0, 3.5]])
        assert base.scaled(2.0).fingerprint() != base.fingerprint()
        wider = Instance.from_profiles([[4.0, 2.0, 2.0], [6.0, 3.5, 3.5]])
        assert wider.fingerprint() != base.fingerprint()
        assert wider.with_machine(2).fingerprint() == base.fingerprint()

    def test_round_trip_stable(self):
        inst = make_workload("mixed", 10, 8, seed=5)
        assert Instance.from_json(inst.to_json()).fingerprint() == inst.fingerprint()

    def test_payload_fingerprint_matches_instance(self):
        inst = make_workload("heavy-tailed", 7, 6, seed=2)
        assert payload_fingerprint(inst.as_dict()) == inst.fingerprint()

    def test_payload_fingerprint_truncates_like_constructor(self):
        payload = {
            "num_procs": 2,
            "tasks": [{"name": "t", "times": [4.0, 2.0, 1.5]}],
        }
        inst = Instance.from_dict(payload)
        assert payload_fingerprint(payload) == inst.fingerprint()

    def test_payload_fingerprint_rejects_malformed(self):
        assert payload_fingerprint({"num_procs": 2, "tasks": []}) is None
        assert payload_fingerprint({"tasks": [{"times": [1.0]}]}) is None
        assert (
            payload_fingerprint({"num_procs": 2, "tasks": [{"times": [1.0]}]}) is None
        )  # profile shorter than the machine
        assert (
            payload_fingerprint({"num_procs": 1, "tasks": [{"times": [-1.0]}]}) is None
        )

    def test_payload_fingerprint_validates_beyond_truncation(self):
        # Garbage past column m must disqualify the fast path — otherwise the
        # payload would 400 on a cold cache but hit (200) on a warm one.
        bad = {"num_procs": 2, "tasks": [{"name": "t", "times": [5.0, 4.0, -1.0]}]}
        assert payload_fingerprint(bad) is None
        with pytest.raises(ModelError):
            request_from_payload({"instance": bad})


# --------------------------------------------------------------------------- #
# request parsing
# --------------------------------------------------------------------------- #
class TestRequestParsing:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ModelError):
            request_from_payload({"algorithm": "mrt"})
        with pytest.raises(ModelError):
            request_from_payload(
                {"instance": {}, "generate": {"family": "uniform"}}
            )

    def test_unknown_family(self):
        with pytest.raises(ModelError):
            request_from_payload({"generate": {"family": "nope"}})

    def test_generate(self):
        req = request_from_payload(
            {"generate": {"family": "uniform", "tasks": 4, "procs": 4, "seed": 1}}
        )
        assert isinstance(req.instance, Instance)
        assert req.instance.num_procs == 4

    def test_raw_instance_stays_lazy(self):
        inst = make_workload("uniform", 4, 4, seed=0)
        req = request_from_payload({"instance": inst.as_dict()})
        assert isinstance(req.instance, dict)
        assert req.fingerprint == inst.fingerprint()
        assert req.cache_key()[0] == inst.fingerprint()

    def test_bad_params(self):
        inst = make_workload("uniform", 4, 4, seed=0)
        with pytest.raises(ModelError):
            request_from_payload({"instance": inst.as_dict(), "params": [1]})


# --------------------------------------------------------------------------- #
# service cache correctness
# --------------------------------------------------------------------------- #
@pytest.fixture
def small_instance() -> Instance:
    return make_workload("mixed", 8, 6, seed=11)


class TestServiceCache:
    def test_hit_returns_identical_schedule_to_direct_call(self, small_instance):
        with SchedulerService(workers=2) as service:
            first = service.schedule(ScheduleRequest(instance=small_instance))
            replay = service.schedule(
                ScheduleRequest(instance=Instance.from_json(small_instance.to_json()))
            )
        assert first["cache_hit"] is False and replay["cache_hit"] is True
        assert canonical_json(first["result"]) == canonical_json(replay["result"])
        direct = make_scheduler("mrt").schedule(small_instance)
        assert first["result"]["makespan"] == direct.makespan()
        assert canonical_json(first["result"]["schedule"]) == canonical_json(
            direct.as_dict()
        )
        # The served schedule is a real, valid schedule for the instance.
        rebuilt = Schedule.from_dict(small_instance, first["result"]["schedule"])
        rebuilt.validate()

    def test_different_algorithm_misses(self, small_instance):
        with SchedulerService(workers=2) as service:
            service.schedule(ScheduleRequest(instance=small_instance))
            other = service.schedule(
                ScheduleRequest(instance=small_instance, algorithm="sequential")
            )
            assert other["cache_hit"] is False
            assert service.cache.stats.misses == 2

    def test_different_params_miss(self, small_instance):
        with SchedulerService(workers=2) as service:
            service.schedule(ScheduleRequest(instance=small_instance))
            tweaked = service.schedule(
                ScheduleRequest(instance=small_instance, params={"eps": 1e-2})
            )
            assert tweaked["cache_hit"] is False

    def test_scaled_instance_misses(self, small_instance):
        with SchedulerService(workers=2) as service:
            service.schedule(ScheduleRequest(instance=small_instance))
            scaled = service.schedule(
                ScheduleRequest(instance=small_instance.scaled(2.0))
            )
            assert scaled["cache_hit"] is False

    def test_ttl_expiry_evicts(self, small_instance):
        now = [0.0]
        with SchedulerService(
            workers=2, cache_ttl=30.0, clock=lambda: now[0]
        ) as service:
            request = ScheduleRequest(instance=small_instance)
            service.schedule(request)
            assert service.schedule(request)["cache_hit"] is True
            now[0] = 31.0
            stale = service.schedule(request)
            assert stale["cache_hit"] is False
            assert service.cache.stats.evictions_ttl == 1

    def test_validate_flag_runs_simulation(self, small_instance):
        with SchedulerService(workers=2) as service:
            response = service.schedule(
                ScheduleRequest(instance=small_instance, validate=True)
            )
        assert response["validation"] is not None
        assert response["validation"]["simulated_makespan"] == pytest.approx(
            response["result"]["makespan"]
        )

    def test_drain_loop_purges_expired_entries(self, small_instance):
        """Long-idle services must not pin dead entries until the next get."""
        now = [0.0]
        with SchedulerService(
            workers=2, cache_ttl=30.0, purge_interval=0.05, clock=lambda: now[0]
        ) as service:
            service.schedule(ScheduleRequest(instance=small_instance))
            assert len(service.cache) == 1
            now[0] = 31.0  # entry is now expired; no request ever touches it
            deadline = time.monotonic() + 5.0
            while len(service.cache) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert len(service.cache) == 0
            assert service.cache.stats.expired_purged == 1
            assert service.metrics()["cache"]["expired_purged"] == 1

    def test_purge_interval_validation(self):
        with pytest.raises(ValueError):
            SchedulerService(purge_interval=0.0, autostart=False)


# --------------------------------------------------------------------------- #
# micro-batching & backpressure
# --------------------------------------------------------------------------- #
class TestBatchingAndBackpressure:
    def test_batch_dedupes_identical_requests(self, small_instance):
        service = SchedulerService(workers=2, autostart=False)
        try:
            request = ScheduleRequest(instance=small_instance)
            futures = [service.submit(request) for _ in range(4)]
            batch = [service._queue.get_nowait() for _ in range(4)]
            with pytest.raises(queue.Empty):
                service._queue.get_nowait()
            service._handle_batch(batch)
            results = [f.result(timeout=60) for f in futures]
            assert service.cache.stats.misses == 1 and service.cache.stats.hits == 0
            assert service.metrics()["deduped_in_batch"] == 3
            payloads = {canonical_json(r["result"]) for r in results}
            assert len(payloads) == 1
        finally:
            service.close()

    def test_backpressure_rejects_and_counts(self, small_instance, monkeypatch):
        class SleepyScheduler:
            name = "sleepy"

            def schedule(self, instance):
                time.sleep(0.3)
                return make_scheduler("sequential").schedule(instance)

        monkeypatch.setitem(ALGORITHMS, "sleepy", SleepyScheduler)
        other = make_workload("uniform", 4, 6, seed=3)
        with SchedulerService(workers=1, max_pending=2) as service:
            f1 = service.submit(
                ScheduleRequest(instance=small_instance, algorithm="sleepy")
            )
            f2 = service.submit(ScheduleRequest(instance=other, algorithm="sleepy"))
            with pytest.raises(ServiceOverloadedError):
                service.submit(ScheduleRequest(instance=small_instance))
            assert f1.result(timeout=60)["result"]["makespan"] > 0
            assert f2.result(timeout=60)["result"]["makespan"] > 0
            metrics = service.metrics()
        assert metrics["rejections"] == 1
        assert metrics["requests_total"] == 2

    def test_closed_service_rejects(self, small_instance):
        service = SchedulerService(workers=1)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(ScheduleRequest(instance=small_instance))

    def test_bad_request_does_not_leak_backpressure_slots(self, small_instance):
        """A request whose cache key cannot be computed must not eat a slot."""
        with SchedulerService(workers=1, max_pending=2) as service:
            bad = ScheduleRequest(instance=small_instance.as_dict())  # no fingerprint
            for _ in range(5):
                with pytest.raises(ModelError):
                    service.submit(bad)
            assert service.metrics()["queue_depth"] == 0
            # The service still serves normal traffic afterwards.
            response = service.schedule(ScheduleRequest(instance=small_instance))
            assert response["result"]["makespan"] > 0


# --------------------------------------------------------------------------- #
# HTTP frontend
# --------------------------------------------------------------------------- #
class TestHTTPFrontend:
    # Transport matrix: every frontend test runs against both the threaded
    # and the asyncio transport — the app layer is shared, so behaviour
    # (and bytes) must not depend on which one serves the sockets.
    @pytest.fixture(params=["threaded", "asyncio"])
    def server(self, request):
        server, _ = start_background_server(
            allow_shutdown=False, transport=request.param
        )
        yield server
        server.close()

    @pytest.fixture
    def client(self, server):
        host, port = server.server_address[:2]
        return ServiceClient(f"http://{host}:{port}")

    def test_healthz_and_metrics(self, client):
        assert client.healthz()["status"] == "ok"
        metrics = client.metrics()
        for key in ("requests_total", "cache", "latency", "queue_depth", "rejections"):
            assert key in metrics
        # Satellite: warm/cold analysis needs the cache stats in the body.
        for key in ("hits", "misses", "hit_rate", "evictions_lru", "evictions_ttl",
                    "expired_purged", "size"):
            assert key in metrics["cache"]
        assert "fast_hits" in metrics

    def test_purge_endpoint(self, client, small_instance):
        client.schedule(small_instance)
        assert client.schedule(small_instance)["cache_hit"] is True
        report = client.purge(all=True)
        assert report["cleared"] >= 1 and report["size"] == 0
        assert client.schedule(small_instance)["cache_hit"] is False

    def test_schedule_round_trip_and_hit(self, client, small_instance):
        first = client.schedule(small_instance)
        replay = client.schedule(small_instance)
        assert first["cache_hit"] is False and replay["cache_hit"] is True
        assert canonical_json(first["result"]) == canonical_json(replay["result"])
        direct = make_scheduler("mrt").schedule(small_instance)
        assert first["result"]["makespan"] == direct.makespan()

    def test_bad_request_is_400(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client.schedule_payload({"nonsense": True})
        assert err.value.status == 400

    def test_unknown_algorithm_is_400(self, client, small_instance):
        with pytest.raises(ServiceHTTPError) as err:
            client.schedule(small_instance, algorithm="nope")
        assert err.value.status == 400

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client._request("/nope")
        assert err.value.status == 404

    def test_shutdown_forbidden_when_disabled(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client.shutdown()
        assert err.value.status == 403

    def test_replay_endpoint_with_generated_trace(self, client):
        response = client.replay(
            generate={"pattern": "poisson", "family": "uniform",
                      "tasks": 8, "procs": 4, "seed": 0},
            quantum=2.0,
            validate=True,
        )
        result = response["result"]
        assert result["num_epochs"] >= 1
        assert len(result["epochs"]) == result["num_epochs"]
        assert response["validation"]["simulated_makespan"] == pytest.approx(
            result["makespan"], rel=1e-6
        )
        assert response["elapsed_ms"] >= 0

    def test_replay_endpoint_with_explicit_trace(self, client):
        from repro.workloads.arrivals import poisson_trace

        trace = poisson_trace("uniform", 6, 4, seed=3)
        response = client.replay(trace)
        assert response["fingerprint"] == trace.fingerprint()
        assert response["result"]["num_tasks"] == 6

    def test_replay_bad_request_is_400(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client.replay(generate={"pattern": "nope"})
        assert err.value.status == 400
        with pytest.raises(ServiceHTTPError) as err:
            client._request("/replay", payload={})
        assert err.value.status == 400

    def test_replay_kernel_selection(self, client):
        from repro.workloads.arrivals import poisson_trace

        trace = poisson_trace("uniform", 8, 4, seed=2)
        responses = {
            kernel: client.replay(trace, kernel=kernel, validate=True)
            for kernel in ("barrier", "availability")
        }
        for kernel, response in responses.items():
            assert response["result"]["kernel"] == kernel
            assert response["validation"] is not None
        # the kernel choice never changes the response shape
        shapes = {
            kernel: (sorted(response), sorted(response["result"]))
            for kernel, response in responses.items()
        }
        assert shapes["barrier"] == shapes["availability"]

    def test_replay_unknown_kernel_is_400_listing_choices(self, client):
        with pytest.raises(ServiceHTTPError) as err:
            client.replay(generate={"tasks": 4, "procs": 2}, kernel="nope")
        assert err.value.status == 400
        message = err.value.payload["error"]
        assert "availability" in message and "barrier" in message

    def test_replay_negative_release_is_400_not_500(self, client):
        from repro.model.instance import Instance

        payload = Instance.from_profiles([[4.0, 2.0], [6.0, 3.5]]).as_dict()
        payload["tasks"][0]["release"] = -1.0
        with pytest.raises(ServiceHTTPError) as err:
            client.replay(payload)
        assert err.value.status == 400
        assert "release" in err.value.payload["error"]

    def test_non_repro_scheduler_crash_is_500(self, client, small_instance, monkeypatch):
        class ExplodingScheduler:
            name = "exploding"

            def schedule(self, instance):
                raise ZeroDivisionError("boom")

        monkeypatch.setitem(ALGORITHMS, "exploding", ExplodingScheduler)
        with pytest.raises(ServiceHTTPError) as err:
            client.schedule(small_instance, algorithm="exploding")
        assert err.value.status == 500
        assert "ZeroDivisionError" in err.value.payload["error"]


# --------------------------------------------------------------------------- #
# simulate_and_check error reporting
# --------------------------------------------------------------------------- #
class TestSimulateAndCheckReporting:
    def test_mismatch_error_names_processor_and_times(self, monkeypatch):
        import repro.sim.validate as validate_mod
        from repro.sim.engine import SimulationResult

        inst = Instance.from_profiles([[2.0, 1.0], [3.0, 1.6]])
        schedule = Schedule(inst, algorithm="test")
        schedule.add(0, 0.0, 0, 1)
        schedule.add(1, 0.0, 1, 1)

        import numpy as np

        def doctored(schedule, **kwargs):
            return SimulationResult(
                makespan=99.0,
                num_procs=2,
                finish_time=np.array([2.0, 99.0]),
            )

        monkeypatch.setattr(validate_mod, "simulate_schedule", doctored)
        with pytest.raises(InvalidScheduleError) as err:
            validate_mod.simulate_and_check(schedule)
        message = str(err.value)
        assert "processor 1" in message
        assert "static finish 3" in message and "simulated 99" in message
