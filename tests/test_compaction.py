"""Tests for schedule compaction (repro.core.compaction)."""

from __future__ import annotations

import pytest

from repro import Instance, MalleableTask, MRTScheduler, Schedule, mixed_instance
from repro.core.compaction import CompactedScheduler, compact_schedule
from repro.core.partition import build_partition
from repro.core.two_shelves import build_lambda_schedule, select_shelf2_subset
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.adversarial import shelf_overflow_instance


class TestCompactSchedule:
    def test_never_increases_makespan(self):
        for seed in range(4):
            inst = mixed_instance(15, 8, seed=seed)
            schedule = MRTScheduler().schedule(inst)
            compacted = compact_schedule(schedule)
            compacted.validate()
            assert compacted.makespan() <= schedule.makespan() + 1e-9

    def test_preserves_allotments_and_blocks(self, small_instance):
        schedule = MRTScheduler().schedule(small_instance)
        compacted = compact_schedule(schedule)
        for entry in schedule.entries:
            new = compacted.entry_for(entry.task_index)
            assert new.num_procs == entry.num_procs
            assert new.first_proc == entry.first_proc
            assert new.start <= entry.start + 1e-12

    def test_removes_artificial_gap(self):
        """A task floating above an idle block is pulled down to it."""
        inst = Instance(
            [MalleableTask.rigid("a", 1.0, 2), MalleableTask.rigid("b", 1.0, 2)], 2
        )
        schedule = Schedule(inst)
        schedule.add(0, 0.0, 0, 1)
        schedule.add(1, 5.0, 0, 1)  # gratuitous gap of 4 time units
        compacted = compact_schedule(schedule)
        assert compacted.entry_for(1).start == pytest.approx(1.0)
        assert compacted.makespan() == pytest.approx(2.0)

    def test_compacts_two_shelf_schedules(self):
        """The idle wedge between the two shelves is (partially) recovered."""
        inst = shelf_overflow_instance(24, seed=11)
        d = canonical_area_lower_bound(inst) * 1.4
        part = build_partition(inst, d)
        assert part is not None
        subset = select_shelf2_subset(part)
        if subset is None:
            pytest.skip("no λ-schedule at this guess")
        schedule = build_lambda_schedule(part, subset)
        compacted = compact_schedule(schedule)
        assert compacted.makespan() <= schedule.makespan() + 1e-9

    def test_partial_schedule_supported(self, small_instance):
        partial = Schedule(small_instance)
        partial.add(0, 3.0, 0, 1)
        compacted = compact_schedule(partial)
        assert compacted.entry_for(0).start == pytest.approx(0.0)


class TestCompactedScheduler:
    def test_wraps_and_improves_or_matches(self, small_instance):
        base = MRTScheduler()
        wrapped = CompactedScheduler(MRTScheduler())
        assert wrapped.name.endswith("+compact")
        raw = base.schedule(small_instance).makespan()
        compacted = wrapped.schedule(small_instance).makespan()
        assert compacted <= raw + 1e-9
