"""Streamed ``POST /replay`` differential suite + per-epoch plan cache.

The streaming pipeline rewrites how replay results reach clients (push
``on_epoch`` callback → bounded queue → NDJSON chunk stream), and the plan
cache rewrites how epochs are scheduled on a warm shard (content-addressed
plan replay instead of a fresh dichotomic search).  Both must be invisible
in the payload bytes, so this suite pins:

(a) for both kernels on random poisson/burst/pareto traces (hypothesis),
    the streamed ``{"epoch": ...}`` frames are exactly the ``epochs`` list
    of the final frame, and the final frame *is* the legacy synchronous
    response — timing fields are the only permitted difference;
(b) a plan-cache-warm replay is byte-identical to a cold one (again modulo
    ``compute_ms``/``elapsed_ms``), including the fallback-adopted
    ``availability-*`` path, with hit/miss/eviction accounting to prove
    the cache was actually exercised;
(c) plan keys are order-sensitive, kernel-agnostic and pinned under lint
    rule RL003 so the schema cannot drift silently;
(d) the daemon endpoint streams the same bytes the in-process generator
    yields, and ``ServiceClient.replay`` reassembles them faithfully.
"""

from __future__ import annotations

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.online import (
    AvailabilityRescheduler,
    CachedPlan,
    EpochRescheduler,
    PlanCache,
    compute_replay_response,
    iter_replay_frames,
)
from repro.online.plancache import PLAN_MISS, plan_key
from repro.registry import ONLINE_KERNELS, make_rescheduler
from repro.workloads.arrivals import make_trace
from repro.workloads.generators import WORKLOAD_FAMILIES

FAMILIES = sorted(WORKLOAD_FAMILIES)

random_traces = st.builds(
    make_trace,
    st.sampled_from(["poisson", "burst", "pareto"]),
    st.sampled_from(FAMILIES),
    st.integers(min_value=3, max_value=12),
    st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)


def scrub(document: dict) -> dict:
    """Zero the wall-clock fields — everything else must be byte-stable."""
    doc = copy.deepcopy(document)
    doc.pop("elapsed_ms", None)
    if "result" in doc:
        doc["result"]["compute_ms"] = 0.0
        for epoch in doc["result"]["epochs"]:
            epoch["compute_ms"] = 0.0
    return doc


def drain(trace, rescheduler, validate=False) -> tuple[list[dict], dict]:
    """Consume ``iter_replay_frames`` → (epoch frames, final document)."""
    documents = [
        json.loads(line) for line in iter_replay_frames(trace, rescheduler, validate)
    ]
    assert all("epoch" in doc for doc in documents[:-1])
    assert "result" in documents[-1]
    return [doc["epoch"] for doc in documents[:-1]], documents[-1]


class TestStreamedFramesMatchKernel:
    @given(trace=random_traces)
    @settings(max_examples=20, deadline=None)
    def test_frames_are_the_final_documents_epochs_bit_exactly(self, trace):
        """(a) No scrubbing here: frames and final doc come from ONE run, so
        even ``compute_ms`` must agree — the stream may not re-run anything."""
        for kernel in ONLINE_KERNELS:
            epochs, final = drain(trace, make_rescheduler(kernel, "mrt"))
            assert epochs == final["result"]["epochs"]
            assert final["result"]["kernel"] == kernel

    @given(trace=random_traces)
    @settings(max_examples=15, deadline=None)
    def test_final_frame_equals_the_synchronous_response(self, trace):
        """(a) Concatenating nothing but the last line reproduces the legacy
        ``compute_replay_response`` document, timing fields aside."""
        for kernel in ONLINE_KERNELS:
            _, final = drain(
                trace, make_rescheduler(kernel, "mrt"), validate=True
            )
            reference = compute_replay_response(
                trace, make_rescheduler(kernel, "mrt"), True
            )
            assert json.dumps(scrub(final), sort_keys=True) == json.dumps(
                scrub(reference), sort_keys=True
            )

    def test_frames_arrive_as_valid_single_line_ndjson(self):
        trace = make_trace("burst", "mixed", 10, 4, seed=3)
        for line in iter_replay_frames(trace, EpochRescheduler("mrt"), False):
            assert line.endswith(b"\n") and line.count(b"\n") == 1
            json.loads(line)

    def test_kernel_error_is_raised_mid_iteration(self):
        """The error contract: the generator re-raises, it never yields a
        final frame — the transport turns that into stream truncation."""

        class Boom(RuntimeError):
            pass

        class FailingScheduler:
            name = "boom"

            def schedule(self, batch):
                raise Boom("engine exploded")

        trace = make_trace("poisson", "uniform", 6, 4, seed=0)
        rescheduler = EpochRescheduler("mrt")
        rescheduler._scheduler = FailingScheduler()
        with pytest.raises(Boom):
            list(iter_replay_frames(trace, rescheduler, False))

    def test_abandoning_the_stream_stops_the_producer_thread(self):
        import threading

        trace = make_trace("poisson", "mixed", 12, 4, seed=1)
        stream = iter_replay_frames(
            trace, EpochRescheduler("mrt"), False, queue_size=1
        )
        assert json.loads(next(stream))  # producer is alive and blocked
        stream.close()
        for thread in threading.enumerate():
            if thread.name == "repro-replay-stream":
                thread.join(timeout=5)
                assert not thread.is_alive(), "producer leaked after close()"


class TestPlanCacheByteIdentity:
    @pytest.mark.parametrize("kernel", sorted(ONLINE_KERNELS))
    def test_warm_replay_is_byte_identical_to_cold(self, kernel):
        """(b) Same trace, shared cache: run 2 rebuilds every epoch plan from
        the cache yet streams the identical document — engine counters
        included, because they are stored inside the cached plan."""
        cache = PlanCache(256)
        trace = make_trace("pareto", "mixed", 16, 6, seed=7)
        runs = []
        for _ in range(2):
            rescheduler = make_rescheduler(kernel, "mrt", plan_cache=cache)
            epochs, final = drain(trace, rescheduler, validate=True)
            assert epochs == final["result"]["epochs"]
            runs.append(scrub(final))
        assert json.dumps(runs[0], sort_keys=True) == json.dumps(
            runs[1], sort_keys=True
        )
        assert cache.stats.misses > 0 and cache.stats.hits >= cache.stats.misses

    def test_fallback_adopted_availability_path_stays_byte_identical(self):
        """(b) Seeds where the no-regret guard adopts the barrier timeline:
        the adopted ``availability-*`` schedule must also replay warm."""
        for seed in range(6):
            cache = PlanCache(256)
            trace = make_trace("poisson", "mixed", 14, 8, seed=seed)
            documents = []
            for _ in range(2):
                rescheduler = AvailabilityRescheduler("mrt", plan_cache=cache)
                _, final = drain(trace, rescheduler)
                assert final["result"]["schedule"]["algorithm"] == (
                    "availability-mrt"
                )
                documents.append(scrub(final))
            assert documents[0] == documents[1]
            assert cache.stats.hits > 0

    def test_plain_replay_unaffected_by_cache_presence(self):
        """A cache-less replay and a cold cached replay emit the same bytes:
        the cache can memoise, never perturb."""
        trace = make_trace("burst", "mixed", 12, 6, seed=2)
        for kernel in ONLINE_KERNELS:
            _, plain = drain(trace, make_rescheduler(kernel, "mrt"))
            _, cached = drain(
                trace, make_rescheduler(kernel, "mrt", plan_cache=PlanCache())
            )
            assert scrub(plain) == scrub(cached)


class TestPlanCacheAccounting:
    def test_hit_miss_and_size_accounting(self):
        cache = PlanCache(64)
        trace = make_trace("poisson", "uniform", 10, 4, seed=5)
        rescheduler = EpochRescheduler("mrt", plan_cache=cache)
        cold = rescheduler.replay(trace)
        assert cache.stats.hits == 0
        assert cache.stats.misses == cold.num_epochs
        assert len(cache) == cold.num_epochs
        EpochRescheduler("mrt", plan_cache=cache).replay(trace)
        assert cache.stats.hits == cold.num_epochs
        assert cache.stats.misses == cold.num_epochs

    def test_lru_eviction_accounting_and_clear(self):
        cache = PlanCache(2)
        batches = [make_trace("poisson", "uniform", 4, 2, seed=s) for s in range(3)]
        plans = {}
        for batch in batches:
            schedule = make_rescheduler("barrier", "mrt")._scheduler.schedule(batch)
            key = plan_key(batch, "mrt", PlanCache.params_json(None))
            plans[key] = CachedPlan.from_schedule(schedule, {"guesses": 1})
            cache.store(key, plans[key])
        assert len(cache) == 2
        assert cache.stats.evictions_lru == 1
        first_key = next(iter(plans))
        assert cache.fetch(first_key) is PLAN_MISS  # the evicted one
        assert cache.clear() == 2 and len(cache) == 0
        metrics = cache.metrics()
        assert metrics["size"] == 0 and metrics["evictions_lru"] == 1

    def test_rebuilt_schedule_matches_the_original(self):
        batch = make_trace("poisson", "mixed", 8, 4, seed=11)
        schedule = make_rescheduler("barrier", "mrt")._scheduler.schedule(batch)
        plan = CachedPlan.from_schedule(schedule, {"guesses": 3})
        rebuilt = plan.build_schedule(batch)
        assert rebuilt.as_dict() == schedule.as_dict()
        assert plan.engine_stats() == {"guesses": 3}


class TestPlanKeySchema:
    def test_key_is_order_sensitive_under_trace_reordering(self):
        """(c) Deliberate: schedulers tie-break by task index, so the same
        tasks in a different order are a *different* plan."""
        from repro.model.instance import Instance

        trace = make_trace("poisson", "mixed", 8, 4, seed=9)
        payload = trace.as_dict()
        reordered = Instance.from_dict(
            {**payload, "tasks": list(reversed(payload["tasks"]))}
        )
        params = PlanCache.params_json(None)
        assert plan_key(trace, "mrt", params) != plan_key(reordered, "mrt", params)

    def test_key_is_stable_across_instances_and_ignores_labels(self):
        """Round-tripping through as_dict/from_dict (what the daemon does)
        and renaming the batch (what the epoch loop does with ``@epochN``)
        must not change the key — that is what makes shards warm."""
        from repro.model.instance import Instance

        trace = make_trace("burst", "mixed", 8, 4, seed=4)
        params = PlanCache.params_json({"b": 2, "a": 1})
        key = plan_key(trace, "mrt", params)
        clone = Instance.from_dict(trace.as_dict())
        assert plan_key(clone, "mrt", params) == key
        renamed = trace.subset(range(trace.num_tasks), name=f"{trace.name}@epoch3")
        assert plan_key(renamed, "mrt", params) == key
        # params canonicalisation: insertion order is irrelevant
        assert PlanCache.params_json({"a": 1, "b": 2}) == params

    def test_key_varies_with_algorithm_and_params_not_kernel(self):
        trace = make_trace("poisson", "uniform", 6, 4, seed=2)
        base = plan_key(trace, "mrt", PlanCache.params_json(None))
        assert plan_key(trace, "ltf", PlanCache.params_json(None)) != base
        assert plan_key(trace, "mrt", PlanCache.params_json({"x": 1})) != base

    def test_rl003_pins_the_plan_key_domain_tag(self):
        """(c) The schema registry must carry the exact inlined tag; the lint
        rule itself (scanning the function body) is exercised by the lint
        suite, so drift in either direction fails CI."""
        from repro.lint.rules.schema import FINGERPRINT_TAGS

        assert FINGERPRINT_TAGS["online/plancache.py::plan_key"] == frozenset(
            {b"repro-plan-v1"}
        )

    def test_rl003_rule_accepts_the_current_plan_key(self):
        """Run the rule itself over the real package: the plancache module
        produces no RL003 findings, so the inlined tag and the registry
        agree in both directions."""
        from pathlib import Path

        import repro
        from repro.lint import run_lint

        result = run_lint(Path(repro.__file__).resolve().parent, rules=["RL003"])
        offenders = [f for f in result.new if "plancache" in f.path]
        assert offenders == [], [f.render() for f in offenders]


class TestDaemonStreamEndToEnd:
    @pytest.fixture(scope="class")
    def server(self):
        from repro.service import start_background_server

        server, _ = start_background_server(allow_shutdown=False)
        yield server
        server.close()

    @pytest.mark.parametrize("kernel", sorted(ONLINE_KERNELS))
    def test_daemon_stream_matches_in_process_generator(self, server, kernel):
        """(d) The HTTP chunk stream carries exactly the NDJSON lines the
        in-process generator yields for the same trace (scrubbed)."""
        import http.client

        spec = {"pattern": "pareto", "family": "mixed", "tasks": 12, "procs": 6,
                "seed": 13}
        body = json.dumps(
            {"generate": spec, "kernel": kernel, "validate": True}
        ).encode()
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.request("POST", "/replay", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            streamed = [json.loads(line) for line in response]
        finally:
            conn.close()
        trace = make_trace(
            spec["pattern"], spec["family"], spec["tasks"], spec["procs"],
            seed=spec["seed"],
        )
        epochs, final = drain(trace, make_rescheduler(kernel, "mrt"), True)
        assert len(streamed) == len(epochs) + 1
        assert scrub(streamed[-1]) == scrub(final)
        for streamed_doc, local_epoch in zip(streamed[:-1], epochs):
            a = dict(streamed_doc["epoch"], compute_ms=0.0)
            b = dict(local_epoch, compute_ms=0.0)
            assert a == b

    def test_service_client_reassembles_the_stream(self, server):
        from repro.service import ServiceClient

        client = ServiceClient(server.url)
        seen: list[dict] = []
        final = client.replay(
            generate={"pattern": "poisson", "family": "mixed", "tasks": 10,
                      "procs": 4, "seed": 21},
            kernel="availability",
            validate=True,
            on_epoch=seen.append,
        )
        assert seen == final["result"]["epochs"]
        assert final["validation"]["events"] > 0
        assert final["elapsed_ms"] > 0

    def test_plan_cache_surfaces_in_daemon_metrics_and_purge(self, server):
        from repro.service import ServiceClient

        client = ServiceClient(server.url)
        client.replay(
            generate={"pattern": "burst", "family": "mixed", "tasks": 10,
                      "procs": 4, "seed": 30},
        )
        metrics = client.metrics()
        plan = metrics["plan_cache"]
        assert plan["size"] > 0
        assert plan["misses"] > 0
        purged = client.purge(all=True)
        assert purged["plan_cleared"] > 0
        assert client.metrics()["plan_cache"]["size"] == 0
