"""Unit tests for the malleable task model (repro.model.task)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MalleableTask, ModelError, MonotonicityError


class TestConstruction:
    def test_basic_profile(self):
        task = MalleableTask("t", [4.0, 2.5, 2.0])
        assert task.max_procs == 3
        assert task.time(1) == 4.0
        assert task.time(3) == 2.0

    def test_name_is_stored(self):
        assert MalleableTask("hello", [1.0]).name == "hello"

    def test_empty_profile_rejected(self):
        with pytest.raises(ModelError):
            MalleableTask("t", [])

    def test_two_dimensional_profile_rejected(self):
        with pytest.raises(ModelError):
            MalleableTask("t", [[1.0, 2.0]])

    def test_negative_time_rejected(self):
        with pytest.raises(ModelError):
            MalleableTask("t", [1.0, -0.5])

    def test_zero_time_rejected(self):
        with pytest.raises(ModelError):
            MalleableTask("t", [1.0, 0.0])

    def test_nan_rejected(self):
        with pytest.raises(ModelError):
            MalleableTask("t", [1.0, float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(ModelError):
            MalleableTask("t", [float("inf")])

    def test_increasing_time_rejected(self):
        with pytest.raises(MonotonicityError):
            MalleableTask("t", [1.0, 2.0])

    def test_superlinear_speedup_rejected(self):
        # work decreases from 4 to 3.8: super-linear speedup
        with pytest.raises(MonotonicityError):
            MalleableTask("t", [4.0, 1.9])

    def test_non_monotonic_allowed_when_flagged(self):
        task = MalleableTask("t", [1.0, 2.0], require_monotonic=False)
        assert not task.is_monotonic

    def test_profile_is_readonly(self):
        task = MalleableTask("t", [2.0, 1.5])
        with pytest.raises(ValueError):
            task.times[0] = 99.0


class TestConstructors:
    def test_constant_work(self):
        task = MalleableTask.constant_work("t", 12.0, 4)
        assert task.time(1) == pytest.approx(12.0)
        assert task.time(4) == pytest.approx(3.0)
        assert task.work(4) == pytest.approx(12.0)

    def test_rigid(self):
        task = MalleableTask.rigid("t", 5.0, 6)
        assert all(task.time(p) == 5.0 for p in range(1, 7))

    def test_rigid_invalid_procs(self):
        with pytest.raises(ModelError):
            MalleableTask.rigid("t", 5.0, 0)

    def test_from_speedup_repairs_monotonicity(self):
        # speedup dips at p=3: the envelope must repair it
        task = MalleableTask.from_speedup("t", 10.0, [1.0, 2.0, 1.5, 2.5])
        assert task.is_monotonic

    def test_from_speedup_rejects_non_positive(self):
        with pytest.raises(ModelError):
            MalleableTask.from_speedup("t", 10.0, [1.0, 0.0])

    def test_monotonic_envelope_fixes_increasing_times(self):
        task = MalleableTask.monotonic_envelope("t", [4.0, 5.0, 3.0])
        assert task.is_monotonic
        assert task.time(2) <= 4.0 + 1e-12

    def test_monotonic_envelope_fixes_decreasing_work(self):
        task = MalleableTask.monotonic_envelope("t", [4.0, 1.0])
        assert task.is_monotonic
        assert task.work(2) >= task.work(1) - 1e-9

    def test_monotonic_envelope_preserves_valid_profiles(self):
        times = [4.0, 2.5, 2.0, 1.8]
        task = MalleableTask.monotonic_envelope("t", times)
        assert np.allclose(task.times, times)


class TestAccessors:
    def test_work(self, amdahl_task):
        for p in range(1, amdahl_task.max_procs + 1):
            assert amdahl_task.work(p) == pytest.approx(p * amdahl_task.time(p))

    def test_speedup_and_efficiency(self, amdahl_task):
        assert amdahl_task.speedup(1) == pytest.approx(1.0)
        assert amdahl_task.efficiency(1) == pytest.approx(1.0)
        assert amdahl_task.speedup(4) > 1.0
        assert amdahl_task.efficiency(4) <= 1.0 + 1e-12

    def test_sequential_and_min_time(self):
        task = MalleableTask("t", [4.0, 3.0, 2.5])
        assert task.sequential_time() == 4.0
        assert task.min_time() == 2.5

    def test_procs_out_of_range(self):
        task = MalleableTask("t", [1.0, 0.9])
        with pytest.raises(ModelError):
            task.time(0)
        with pytest.raises(ModelError):
            task.time(3)

    def test_procs_must_be_int(self):
        task = MalleableTask("t", [1.0, 0.9])
        with pytest.raises(ModelError):
            task.time(1.5)  # type: ignore[arg-type]


class TestCanonicalProcs:
    def test_canonical_basic(self):
        task = MalleableTask("t", [4.0, 2.5, 2.0, 1.8])
        assert task.canonical_procs(4.0) == 1
        assert task.canonical_procs(2.5) == 2
        assert task.canonical_procs(2.4) == 3
        assert task.canonical_procs(1.0) is None

    def test_canonical_negative_deadline(self):
        task = MalleableTask("t", [1.0])
        assert task.canonical_procs(-1.0) is None
        assert task.canonical_procs(0.0) is None

    def test_canonical_time_and_work(self):
        task = MalleableTask("t", [4.0, 2.5, 2.0])
        assert task.canonical_time(2.6) == pytest.approx(2.5)
        assert task.canonical_work(2.6) == pytest.approx(5.0)
        assert task.canonical_time(1.0) is None
        assert task.canonical_work(1.0) is None

    def test_canonical_on_non_monotonic_profile(self):
        task = MalleableTask("t", [3.0, 4.0, 1.0], require_monotonic=False)
        # linear scan fallback: first p with time <= 2 is p=3
        assert task.canonical_procs(2.0) == 3

    def test_property1_from_canonical(self):
        """Work at the canonical allotment exceeds (γ-1)·d (Property 1)."""
        task = MalleableTask("t", [8.0, 4.5, 3.2, 2.6])
        d = 3.0
        gamma = task.canonical_procs(d)
        assert gamma == 4
        assert task.work(gamma) > (gamma - 1) * d


class TestTransformations:
    def test_restricted(self):
        task = MalleableTask("t", [4.0, 3.0, 2.0, 1.5])
        small = task.restricted(2)
        assert small.max_procs == 2
        assert small.time(2) == 3.0

    def test_restricted_invalid(self):
        with pytest.raises(ModelError):
            MalleableTask("t", [1.0]).restricted(0)

    def test_scaled(self):
        task = MalleableTask("t", [4.0, 3.0])
        scaled = task.scaled(2.0)
        assert scaled.time(1) == 8.0
        assert scaled.time(2) == 6.0

    def test_scaled_invalid(self):
        with pytest.raises(ModelError):
            MalleableTask("t", [1.0]).scaled(0.0)

    def test_round_trip_dict(self):
        task = MalleableTask("t", [4.0, 3.0, 2.5])
        clone = MalleableTask.from_dict(task.as_dict())
        assert clone == task

    def test_equality_and_hash(self):
        a = MalleableTask("t", [4.0, 3.0])
        b = MalleableTask("t", [4.0, 3.0])
        c = MalleableTask("t", [4.0, 2.9])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a task"
