"""Wire-level parity audits across transports and across apps.

Two invariants of the transport/app split, checked over raw sockets:

* **Cross-transport identity** — the same request against a threaded and an
  asyncio daemon produces the same status, the same body bytes and the same
  headers (modulo ``Date`` and the transport's ``Server`` tag, which name
  the implementation by design).
* **Daemon/router parity** — every shared error path (unknown path, bad
  query, bad body, disabled shutdown, ...) answers identically from the
  single-process daemon and the cluster router, because both are the same
  ``App`` machinery.  This pins the fix for the historical drift where the
  two frontends disagreed on ``Content-Length: 0`` and duplicated headers
  on error responses.

Every response is additionally audited structurally: header names unique,
``Content-Length`` present and equal to the body length.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.service import start_background_server
from repro.service.cluster import ShardSpec, start_cluster

SCHEDULE_BODY = json.dumps(
    {
        "algorithm": "mrt",
        "generate": {"family": "uniform", "tasks": 4, "procs": 2, "seed": 0},
    }
).encode()

#: (name, method, target, body) — every deterministic shared path: the
#: error surface of both apps plus the disabled-shutdown 403.
ERROR_REQUESTS = [
    ("unknown-path", "GET", "/nope?x=1", b""),
    ("unknown-trace", "GET", "/trace/deadbeef", b""),
    ("bad-history-query", "GET", "/metrics/history?window=abc", b""),
    ("bad-slow-ms", "GET", "/traces?slow_ms=abc", b""),
    ("empty-schedule", "POST", "/schedule", b""),
    ("malformed-schedule", "POST", "/schedule", b'{"nonsense": true}'),
    ("schedule-not-json", "POST", "/schedule", b"not json at all"),
    ("purge-not-json", "POST", "/purge", b"not json"),
    ("shutdown-disabled", "POST", "/shutdown", b"{}"),
    ("unknown-method", "PUT", "/healthz", b""),
]

#: Headers that legitimately differ run-to-run or transport-to-transport.
VOLATILE_HEADERS = frozenset({"date", "server", "x-repro-trace-id"})


def exchange(address, method: str, target: str, body: bytes):
    """One request on a fresh connection; returns (status, headers, body).

    ``headers`` is the ordered list of ``(lowercased-name, value)`` pairs as
    they appeared on the wire — duplicates preserved, so the structural
    audit can see them.
    """
    head = f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
    if body or method in ("POST", "PUT"):
        head += f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
    with socket.create_connection(address, timeout=30) as conn:
        conn.sendall(head.encode() + b"\r\n" + body)
        rfile = conn.makefile("rb")
        status_line = rfile.readline()
        assert status_line, "server closed the connection before responding"
        status = int(status_line.split()[1])
        headers: list[tuple[str, str]] = []
        while True:
            line = rfile.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode().partition(":")
            headers.append((name.strip().lower(), value.strip()))
        length = next(
            (int(v) for n, v in headers if n == "content-length"), 0
        )
        payload = rfile.read(length)
    return status, headers, payload


def audit_structure(name, status, headers, payload):
    """Every response: unique header names, honest Content-Length."""
    names = [n for n, _ in headers]
    assert len(names) == len(set(names)), f"{name}: duplicate headers {names}"
    lengths = [v for n, v in headers if n == "content-length"]
    assert lengths, f"{name}: response has no Content-Length"
    assert int(lengths[0]) == len(payload), f"{name}: Content-Length lies"


def comparable(headers):
    return sorted((n, v) for n, v in headers if n not in VOLATILE_HEADERS)


@pytest.fixture(scope="class")
def daemons():
    servers = {}
    for transport in ("threaded", "asyncio"):
        servers[transport], _ = start_background_server(
            allow_shutdown=False, transport=transport
        )
    yield servers
    for server in servers.values():
        server.close()


class TestCrossTransportIdentity:
    @pytest.mark.parametrize(
        "name,method,target,body",
        ERROR_REQUESTS,
        ids=[r[0] for r in ERROR_REQUESTS],
    )
    def test_error_paths_byte_identical(self, daemons, name, method, target, body):
        results = {}
        for transport, server in daemons.items():
            status, headers, payload = exchange(
                server.server_address[:2], method, target, body
            )
            audit_structure(f"{transport}:{name}", status, headers, payload)
            results[transport] = (status, comparable(headers), payload)
        assert results["threaded"] == results["asyncio"]

    def test_schedule_identical_modulo_elapsed(self, daemons):
        results = {}
        for transport, server in daemons.items():
            status, headers, payload = exchange(
                server.server_address[:2], "POST", "/schedule", SCHEDULE_BODY
            )
            audit_structure(f"{transport}:schedule", status, headers, payload)
            document = json.loads(payload)
            document.pop("elapsed_ms")
            # The trace id value is random per request; its presence is not.
            assert any(n == "x-repro-trace-id" for n, _ in headers)
            # Content-Length tracks the digit count of the elapsed_ms we
            # just popped; audit_structure already pinned it to the body.
            clean = [(n, v) for n, v in headers if n != "content-length"]
            results[transport] = (status, comparable(clean), document)
        assert results["threaded"] == results["asyncio"]
        assert results["threaded"][0] == 200


@pytest.fixture(scope="class")
def daemon_and_router():
    server, _ = start_background_server(allow_shutdown=False)
    cluster = start_cluster(
        1,
        backend="thread",
        spec=ShardSpec(workers=2),
        respawn=False,
        allow_shutdown=False,
    )
    yield server, cluster
    server.close()
    cluster.close()


class TestDaemonRouterParity:
    @pytest.mark.parametrize(
        "name,method,target,body",
        ERROR_REQUESTS,
        ids=[r[0] for r in ERROR_REQUESTS],
    )
    def test_error_paths_identical(self, daemon_and_router, name, method, target, body):
        server, cluster = daemon_and_router
        results = {}
        for which, address in (
            ("daemon", server.server_address[:2]),
            ("router", cluster.server.server_address[:2]),
        ):
            status, headers, payload = exchange(address, method, target, body)
            audit_structure(f"{which}:{name}", status, headers, payload)
            results[which] = (status, comparable(headers), payload)
        assert results["daemon"] == results["router"]

    def test_schedule_success_identical_modulo_elapsed(self, daemon_and_router):
        server, cluster = daemon_and_router
        results = {}
        for which, address in (
            ("daemon", server.server_address[:2]),
            ("router", cluster.server.server_address[:2]),
        ):
            status, headers, payload = exchange(
                address, "POST", "/schedule", SCHEDULE_BODY
            )
            audit_structure(f"{which}:schedule", status, headers, payload)
            document = json.loads(payload)
            document.pop("elapsed_ms")
            results[which] = (status, document)
        assert results["daemon"] == results["router"]
