"""Wire-level parity audits across transports and across apps.

Two invariants of the transport/app split, checked over raw sockets:

* **Cross-transport identity** — the same request against a threaded and an
  asyncio daemon produces the same status, the same body bytes and the same
  headers (modulo ``Date`` and the transport's ``Server`` tag, which name
  the implementation by design).
* **Daemon/router parity** — every shared error path (unknown path, bad
  query, bad body, disabled shutdown, ...) answers identically from the
  single-process daemon and the cluster router, because both are the same
  ``App`` machinery.  This pins the fix for the historical drift where the
  two frontends disagreed on ``Content-Length: 0`` and duplicated headers
  on error responses.

Every response is additionally audited structurally: header names unique,
``Content-Length`` present and equal to the body length.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.service import start_background_server
from repro.service.cluster import ShardSpec, start_cluster

SCHEDULE_BODY = json.dumps(
    {
        "algorithm": "mrt",
        "generate": {"family": "uniform", "tasks": 4, "procs": 2, "seed": 0},
    }
).encode()

#: (name, method, target, body) — every deterministic shared path: the
#: error surface of both apps plus the disabled-shutdown 403.
ERROR_REQUESTS = [
    ("unknown-path", "GET", "/nope?x=1", b""),
    ("unknown-trace", "GET", "/trace/deadbeef", b""),
    ("bad-history-query", "GET", "/metrics/history?window=abc", b""),
    ("bad-slow-ms", "GET", "/traces?slow_ms=abc", b""),
    ("empty-schedule", "POST", "/schedule", b""),
    ("malformed-schedule", "POST", "/schedule", b'{"nonsense": true}'),
    ("schedule-not-json", "POST", "/schedule", b"not json at all"),
    ("malformed-replay", "POST", "/replay", b'{"nonsense": true}'),
    ("replay-not-json", "POST", "/replay", b"not json at all"),
    ("replay-bad-kernel", "POST", "/replay", json.dumps(
        {"generate": {"tasks": 3, "procs": 2}, "kernel": "nope"}
    ).encode()),
    ("purge-not-json", "POST", "/purge", b"not json"),
    ("shutdown-disabled", "POST", "/shutdown", b"{}"),
    ("unknown-method", "PUT", "/healthz", b""),
]

#: Headers that legitimately differ run-to-run or transport-to-transport.
VOLATILE_HEADERS = frozenset({"date", "server", "x-repro-trace-id"})


def exchange(address, method: str, target: str, body: bytes):
    """One request on a fresh connection; returns (status, headers, body).

    ``headers`` is the ordered list of ``(lowercased-name, value)`` pairs as
    they appeared on the wire — duplicates preserved, so the structural
    audit can see them.
    """
    head = f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
    if body or method in ("POST", "PUT"):
        head += f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
    with socket.create_connection(address, timeout=30) as conn:
        conn.sendall(head.encode() + b"\r\n" + body)
        rfile = conn.makefile("rb")
        status_line = rfile.readline()
        assert status_line, "server closed the connection before responding"
        status = int(status_line.split()[1])
        headers: list[tuple[str, str]] = []
        while True:
            line = rfile.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode().partition(":")
            headers.append((name.strip().lower(), value.strip()))
        length = next(
            (int(v) for n, v in headers if n == "content-length"), 0
        )
        payload = rfile.read(length)
    return status, headers, payload


def audit_structure(name, status, headers, payload):
    """Every response: unique header names, honest Content-Length."""
    names = [n for n, _ in headers]
    assert len(names) == len(set(names)), f"{name}: duplicate headers {names}"
    lengths = [v for n, v in headers if n == "content-length"]
    assert lengths, f"{name}: response has no Content-Length"
    assert int(lengths[0]) == len(payload), f"{name}: Content-Length lies"


def comparable(headers):
    return sorted((n, v) for n, v in headers if n not in VOLATILE_HEADERS)


@pytest.fixture(scope="class")
def daemons():
    servers = {}
    for transport in ("threaded", "asyncio"):
        servers[transport], _ = start_background_server(
            allow_shutdown=False, transport=transport
        )
    yield servers
    for server in servers.values():
        server.close()


class TestCrossTransportIdentity:
    @pytest.mark.parametrize(
        "name,method,target,body",
        ERROR_REQUESTS,
        ids=[r[0] for r in ERROR_REQUESTS],
    )
    def test_error_paths_byte_identical(self, daemons, name, method, target, body):
        results = {}
        for transport, server in daemons.items():
            status, headers, payload = exchange(
                server.server_address[:2], method, target, body
            )
            audit_structure(f"{transport}:{name}", status, headers, payload)
            results[transport] = (status, comparable(headers), payload)
        assert results["threaded"] == results["asyncio"]

    def test_schedule_identical_modulo_elapsed(self, daemons):
        results = {}
        for transport, server in daemons.items():
            status, headers, payload = exchange(
                server.server_address[:2], "POST", "/schedule", SCHEDULE_BODY
            )
            audit_structure(f"{transport}:schedule", status, headers, payload)
            document = json.loads(payload)
            document.pop("elapsed_ms")
            # The trace id value is random per request; its presence is not.
            assert any(n == "x-repro-trace-id" for n, _ in headers)
            # Content-Length tracks the digit count of the elapsed_ms we
            # just popped; audit_structure already pinned it to the body.
            clean = [(n, v) for n, v in headers if n != "content-length"]
            results[transport] = (status, comparable(clean), document)
        assert results["threaded"] == results["asyncio"]
        assert results["threaded"][0] == 200


@pytest.fixture(scope="class")
def daemon_and_router():
    server, _ = start_background_server(allow_shutdown=False)
    cluster = start_cluster(
        1,
        backend="thread",
        spec=ShardSpec(workers=2),
        respawn=False,
        allow_shutdown=False,
    )
    yield server, cluster
    server.close()
    cluster.close()


class TestDaemonRouterParity:
    @pytest.mark.parametrize(
        "name,method,target,body",
        ERROR_REQUESTS,
        ids=[r[0] for r in ERROR_REQUESTS],
    )
    def test_error_paths_identical(self, daemon_and_router, name, method, target, body):
        server, cluster = daemon_and_router
        results = {}
        for which, address in (
            ("daemon", server.server_address[:2]),
            ("router", cluster.server.server_address[:2]),
        ):
            status, headers, payload = exchange(address, method, target, body)
            audit_structure(f"{which}:{name}", status, headers, payload)
            results[which] = (status, comparable(headers), payload)
        assert results["daemon"] == results["router"]

    def test_schedule_success_identical_modulo_elapsed(self, daemon_and_router):
        server, cluster = daemon_and_router
        results = {}
        for which, address in (
            ("daemon", server.server_address[:2]),
            ("router", cluster.server.server_address[:2]),
        ):
            status, headers, payload = exchange(
                address, "POST", "/schedule", SCHEDULE_BODY
            )
            audit_structure(f"{which}:schedule", status, headers, payload)
            document = json.loads(payload)
            document.pop("elapsed_ms")
            results[which] = (status, document)
        assert results["daemon"] == results["router"]


# ---------------------------------------------------------------------- #
# Chunked-response parity (streamed POST /replay)
# ---------------------------------------------------------------------- #

REPLAY_BODY = json.dumps(
    {
        "generate": {
            "pattern": "pareto",
            "family": "mixed",
            "tasks": 10,
            "procs": 4,
            "seed": 17,
        },
        "kernel": "availability",
        "validate": True,
    }
).encode()


def exchange_stream(address, body: bytes, target: str = "/replay"):
    """One streamed POST on a fresh connection.

    Returns ``(status, headers, frames, terminated)`` where ``frames`` is
    the list of chunk payloads exactly as framed on the wire (one element
    per ``Transfer-Encoding: chunked`` chunk — chunk boundaries are part of
    the protocol: one NDJSON line per chunk) and ``terminated`` says whether
    the terminating zero-length chunk arrived.  A non-chunked response
    (e.g. a pre-stream 400) comes back as a single pseudo-frame with
    ``terminated=True``.
    """
    head = (
        f"POST {target} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n"
    )
    with socket.create_connection(address, timeout=60) as conn:
        conn.sendall(head.encode() + body)
        rfile = conn.makefile("rb")
        status_line = rfile.readline()
        assert status_line, "server closed the connection before responding"
        status = int(status_line.split()[1])
        headers: list[tuple[str, str]] = []
        while True:
            line = rfile.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode().partition(":")
            headers.append((name.strip().lower(), value.strip()))
        if not any(n == "transfer-encoding" for n, _ in headers):
            length = next((int(v) for n, v in headers if n == "content-length"), 0)
            return status, headers, [rfile.read(length)], True
        frames: list[bytes] = []
        terminated = False
        while True:
            size_line = rfile.readline()
            if not size_line:
                break  # connection closed mid-stream: truncation
            size = int(size_line.strip(), 16)
            if size == 0:
                terminated = True
                rfile.readline()  # trailing CRLF of the last-chunk
                break
            chunk = rfile.read(size + 2)
            if len(chunk) < size + 2 or not chunk.endswith(b"\r\n"):
                break  # truncated inside a chunk
            frames.append(chunk[:-2])
    return status, headers, frames, terminated


def audit_stream_structure(name, headers, frames):
    """Streamed responses: unique headers, chunked framing, no
    Content-Length, NDJSON chunks — exactly one JSON line per chunk."""
    names = [n for n, _ in headers]
    assert len(names) == len(set(names)), f"{name}: duplicate headers {names}"
    assert ("transfer-encoding", "chunked") in headers, f"{name}: not chunked"
    assert "content-length" not in names, f"{name}: chunked AND Content-Length"
    content_type = next(v for n, v in headers if n == "content-type")
    assert content_type == "application/x-ndjson", f"{name}: {content_type}"
    for frame in frames:
        assert frame.endswith(b"\n") and frame.count(b"\n") == 1, (
            f"{name}: chunk is not one NDJSON line: {frame[:80]!r}"
        )
        json.loads(frame)


def comparable_frames(frames):
    """Frame payloads with the wall-clock fields zeroed, boundaries kept."""
    documents = [json.loads(frame) for frame in frames]
    for document in documents:
        document.pop("elapsed_ms", None)
        if "epoch" in document:
            document["epoch"]["compute_ms"] = 0.0
        if "result" in document:
            document["result"]["compute_ms"] = 0.0
            for epoch in document["result"]["epochs"]:
                epoch["compute_ms"] = 0.0
    return documents


class TestStreamedReplayParity:
    def test_cross_transport_stream_identical(self, daemons):
        """Status, headers, chunk boundaries and scrubbed chunk payloads all
        agree between the threaded and asyncio transports."""
        results = {}
        for transport, server in daemons.items():
            status, headers, frames, terminated = exchange_stream(
                server.server_address[:2], REPLAY_BODY
            )
            assert status == 200 and terminated, f"{transport}: broken stream"
            audit_stream_structure(f"{transport}:replay", headers, frames)
            results[transport] = (
                status,
                comparable(headers),
                comparable_frames(frames),
            )
        assert results["threaded"] == results["asyncio"]

    def test_daemon_router_stream_identical(self, daemon_and_router):
        """The router relays the shard's chunk stream frame-for-frame: same
        boundaries, same payloads, same terminating chunk."""
        server, cluster = daemon_and_router
        results = {}
        for which, address in (
            ("daemon", server.server_address[:2]),
            ("router", cluster.server.server_address[:2]),
        ):
            status, headers, frames, terminated = exchange_stream(
                address, REPLAY_BODY
            )
            assert status == 200 and terminated, f"{which}: broken stream"
            audit_stream_structure(f"{which}:replay", headers, frames)
            results[which] = (
                status,
                comparable(headers),
                comparable_frames(frames),
            )
        assert results["daemon"] == results["router"]

    def test_stream_epochs_match_final_document(self, daemons):
        """Protocol shape: every frame but the last is {"epoch": ...}, the
        last is the full response whose epochs ARE the streamed frames."""
        for transport, server in daemons.items():
            _, _, frames, _ = exchange_stream(
                server.server_address[:2], REPLAY_BODY
            )
            documents = [json.loads(frame) for frame in frames]
            assert all("epoch" in doc for doc in documents[:-1])
            final = documents[-1]
            assert final["result"]["epochs"] == [
                doc["epoch"] for doc in documents[:-1]
            ]
            assert final["validation"] is not None


class TestErrorMidStream:
    """A kernel failure AFTER frames have been sent cannot be turned into an
    HTTP error (the 200 and the early chunks are already on the wire).  The
    pinned contract: the server aborts the chunked stream WITHOUT the
    terminating zero chunk and closes the connection — truncation is the
    client's only error signal — identically on every frontend."""

    @pytest.fixture(scope="class")
    def boom_payload(self):
        """Register a scheduler that fails on single-task batches and build
        a trace (releases 0, 0, 5) whose SECOND epoch is single-task: one
        epoch frame streams, then the kernel dies."""
        from repro.core.mrt import MRTScheduler
        from repro.registry import ALGORITHMS
        from repro.workloads.generators import make_workload

        class BoomScheduler:
            def __init__(self):
                self._inner = MRTScheduler()

            def schedule(self, batch):
                if batch.num_tasks == 1:
                    raise RuntimeError("mid-stream kernel failure (test)")
                return self._inner.schedule(batch)

        ALGORITHMS["boom-mid"] = BoomScheduler
        trace = make_workload("uniform", 3, 4, seed=0).with_releases(
            [0.0, 0.0, 5.0]
        )
        yield json.dumps(
            {"trace": trace.as_dict(), "algorithm": "boom-mid"}
        ).encode()
        del ALGORITHMS["boom-mid"]

    def test_truncation_identical_on_both_transports(self, daemons, boom_payload):
        results = {}
        for transport, server in daemons.items():
            status, headers, frames, terminated = exchange_stream(
                server.server_address[:2], boom_payload
            )
            assert status == 200, f"{transport}: error raced the first frame"
            assert not terminated, f"{transport}: stream terminated cleanly!"
            audit_stream_structure(f"{transport}:boom", headers, frames)
            documents = [json.loads(frame) for frame in frames]
            assert documents, f"{transport}: no epoch frame before the error"
            assert all("epoch" in doc for doc in documents), (
                f"{transport}: a final document leaked after the failure"
            )
            results[transport] = (status, comparable_frames(frames))
        assert results["threaded"] == results["asyncio"]

    def test_router_relays_the_truncation(self, daemon_and_router, boom_payload):
        server, cluster = daemon_and_router
        results = {}
        for which, address in (
            ("daemon", server.server_address[:2]),
            ("router", cluster.server.server_address[:2]),
        ):
            status, headers, frames, terminated = exchange_stream(
                address, boom_payload
            )
            assert status == 200 and not terminated, f"{which}: not truncated"
            documents = [json.loads(frame) for frame in frames]
            assert documents and all("epoch" in doc for doc in documents)
            results[which] = (status, comparable_frames(frames))
        assert results["daemon"] == results["router"]
