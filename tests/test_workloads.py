"""Tests for the workload generators (repro.workloads)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Instance, ModelError
from repro.workloads import (
    WORKLOAD_FAMILIES,
    fragmentation_instance,
    heavy_tailed_instance,
    lpt_worst_case_instance,
    make_workload,
    mixed_instance,
    ocean_instance,
    property3_stress_instances,
    random_monotonic_instance,
    refinement_field,
    rigid_heavy_instance,
    shelf_overflow_instance,
    uniform_instance,
)

GENERATORS = [
    uniform_instance,
    mixed_instance,
    heavy_tailed_instance,
    rigid_heavy_instance,
    random_monotonic_instance,
]


@pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.__name__)
class TestRandomFamilies:
    def test_shape(self, generator):
        inst = generator(10, 8, seed=0)
        assert isinstance(inst, Instance)
        assert inst.num_tasks == 10
        assert inst.num_procs == 8

    def test_all_tasks_monotonic(self, generator):
        inst = generator(15, 16, seed=1)
        assert all(task.is_monotonic for task in inst.tasks)

    def test_deterministic_given_seed(self, generator):
        a = generator(8, 8, seed=42)
        b = generator(8, 8, seed=42)
        for ta, tb in zip(a.tasks, b.tasks):
            assert np.allclose(ta.times, tb.times)

    def test_different_seeds_differ(self, generator):
        a = generator(8, 8, seed=1)
        b = generator(8, 8, seed=2)
        assert any(
            not np.allclose(ta.times, tb.times) for ta, tb in zip(a.tasks, b.tasks)
        )

    def test_invalid_sizes(self, generator):
        with pytest.raises(ModelError):
            generator(0, 8)
        with pytest.raises(ModelError):
            generator(5, 0)


class TestRegistry:
    def test_make_workload_all_families(self):
        for family in WORKLOAD_FAMILIES:
            inst = make_workload(family, 6, 4, seed=0)
            assert inst.num_tasks == 6

    def test_make_workload_unknown(self):
        with pytest.raises(ModelError):
            make_workload("does-not-exist", 5, 4)


class TestAdversarial:
    def test_property3_instances_have_witness_structure(self):
        count = 0
        for inst in property3_stress_instances(12, 0.85, trials=8, rng=0):
            count += 1
            assert inst.num_procs == 12
            assert all(task.is_monotonic for task in inst.tasks)
        assert count > 0

    def test_property3_requires_valid_mu(self):
        with pytest.raises(ModelError):
            list(property3_stress_instances(8, 0.4, trials=1))

    def test_shelf_overflow_has_tall_tasks(self):
        inst = shelf_overflow_instance(16, seed=0)
        lb = inst.lower_bound()
        tall = [t for t in inst.tasks if t.sequential_time() > 0.5 * lb]
        assert tall

    def test_shelf_overflow_min_size(self):
        with pytest.raises(ModelError):
            shelf_overflow_instance(2)

    def test_fragmentation_deterministic(self):
        a = fragmentation_instance(8)
        b = fragmentation_instance(8)
        assert a.num_tasks == b.num_tasks

    def test_lpt_worst_case_structure(self):
        m = 5
        inst = lpt_worst_case_instance(m)
        assert inst.num_tasks == 2 * m + 1
        durations = sorted(t.sequential_time() for t in inst.tasks)
        assert durations[0] == pytest.approx(m)
        assert durations[-1] == pytest.approx(2 * m - 1)


class TestOcean:
    def test_refinement_field_shape_and_levels(self):
        field = refinement_field(6, max_level=4, rng=0)
        assert field.shape == (6, 6)
        assert field.min() >= 1 and field.max() <= 4

    def test_refinement_field_invalid(self):
        with pytest.raises(ModelError):
            refinement_field(0)

    def test_ocean_instance_structure(self):
        inst = ocean_instance(16, blocks=4, seed=0)
        assert inst.num_tasks == 16
        assert all(task.is_monotonic for task in inst.tasks)
        # refined patches do more work than coarse ones
        works = sorted(t.sequential_time() for t in inst.tasks)
        assert works[-1] > works[0]

    def test_ocean_speedup_limited_by_communication(self):
        inst = ocean_instance(32, blocks=3, comm_cost=0.5, seed=1)
        # with a huge communication cost, no task should scale to 32 procs
        for task in inst.tasks:
            assert task.speedup(32) < 32.0

    def test_ocean_deterministic(self):
        a = ocean_instance(8, blocks=3, seed=7)
        b = ocean_instance(8, blocks=3, seed=7)
        for ta, tb in zip(a.tasks, b.tasks):
            assert np.allclose(ta.times, tb.times)
