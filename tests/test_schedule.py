"""Unit tests for Schedule / ScheduledTask (repro.model.schedule)."""

from __future__ import annotations

import pytest

from repro import Instance, InvalidScheduleError, MalleableTask, ModelError, Schedule


@pytest.fixture
def inst() -> Instance:
    tasks = [
        MalleableTask("a", [4.0, 2.5, 2.0, 1.8]),
        MalleableTask("b", [3.0, 1.8, 1.5, 1.3]),
        MalleableTask("c", [1.0, 0.9, 0.85, 0.8]),
    ]
    return Instance(tasks, 4)


def full_schedule(inst: Instance) -> Schedule:
    sched = Schedule(inst, algorithm="manual")
    sched.add(0, 0.0, 0, 2)  # a on P0-P1, [0, 2.5)
    sched.add(1, 0.0, 2, 2)  # b on P2-P3, [0, 1.8)
    sched.add(2, 2.5, 0, 1)  # c on P0,   [2.5, 3.5)
    return sched


class TestBuilding:
    def test_add_and_entries(self, inst):
        sched = full_schedule(inst)
        assert len(sched) == 3
        entry = sched.entry_for(0)
        assert entry.start == 0.0
        assert entry.end == pytest.approx(2.5)
        assert list(entry.procs) == [0, 1]
        assert entry.work == pytest.approx(5.0)

    def test_entry_for_missing(self, inst):
        sched = Schedule(inst)
        with pytest.raises(KeyError):
            sched.entry_for(0)

    def test_add_invalid_task_index(self, inst):
        sched = Schedule(inst)
        with pytest.raises(ModelError):
            sched.add(99, 0.0, 0, 1)

    def test_is_complete(self, inst):
        sched = full_schedule(inst)
        assert sched.is_complete()
        partial = Schedule(inst)
        partial.add(0, 0.0, 0, 1)
        assert not partial.is_complete()

    def test_duration_defaults_to_profile(self, inst):
        sched = Schedule(inst)
        entry = sched.add(0, 0.0, 0, 3)
        assert entry.duration == pytest.approx(inst.tasks[0].time(3))


class TestMetrics:
    def test_makespan(self, inst):
        assert full_schedule(inst).makespan() == pytest.approx(3.5)

    def test_empty_makespan(self, inst):
        assert Schedule(inst).makespan() == 0.0

    def test_total_work_and_utilization(self, inst):
        sched = full_schedule(inst)
        expected_work = 2 * 2.5 + 2 * 1.8 + 1 * 1.0
        assert sched.total_work() == pytest.approx(expected_work)
        assert sched.utilization() == pytest.approx(expected_work / (4 * 3.5))
        assert sched.idle_area() == pytest.approx(4 * 3.5 - expected_work)

    def test_processor_intervals(self, inst):
        intervals = full_schedule(inst).processor_intervals()
        assert len(intervals) == 4
        assert [t for _, _, t in intervals[0]] == [0, 2]

    def test_processor_finish_times(self, inst):
        finish = full_schedule(inst).processor_finish_times()
        assert finish[0] == pytest.approx(3.5)
        assert finish[3] == pytest.approx(1.8)


class TestValidation:
    def test_valid_schedule_passes(self, inst):
        full_schedule(inst).validate()

    def test_missing_task_detected(self, inst):
        sched = Schedule(inst)
        sched.add(0, 0.0, 0, 2)
        with pytest.raises(InvalidScheduleError):
            sched.validate()
        sched.validate(require_complete=False)

    def test_duplicate_task_detected(self, inst):
        sched = full_schedule(inst)
        sched.add(0, 5.0, 0, 1)
        with pytest.raises(InvalidScheduleError):
            sched.validate()

    def test_overlap_detected(self, inst):
        sched = Schedule(inst)
        sched.add(0, 0.0, 0, 2)
        sched.add(1, 1.0, 1, 2)  # overlaps task 0 on processor 1
        with pytest.raises(InvalidScheduleError):
            sched.validate(require_complete=False)

    def test_touching_intervals_are_fine(self, inst):
        sched = Schedule(inst)
        sched.add(0, 0.0, 0, 2)
        sched.add(1, 2.5, 0, 2)
        sched.validate(require_complete=False)

    def test_negative_start_detected(self, inst):
        sched = Schedule(inst)
        sched.add(0, -1.0, 0, 1)
        with pytest.raises(InvalidScheduleError):
            sched.validate(require_complete=False)

    def test_out_of_machine_detected(self, inst):
        sched = Schedule(inst)
        sched.add(0, 0.0, 3, 2)  # P3-P4 but machine has P0..P3
        with pytest.raises(InvalidScheduleError):
            sched.validate(require_complete=False)

    def test_wrong_duration_detected(self, inst):
        sched = Schedule(inst)
        sched.add(0, 0.0, 0, 1, duration=99.0)
        with pytest.raises(InvalidScheduleError):
            sched.validate(require_complete=False)

    def test_deadline_check(self, inst):
        sched = full_schedule(inst)
        sched.validate(deadline=3.6)
        with pytest.raises(InvalidScheduleError):
            sched.validate(deadline=3.0)

    def test_is_valid_boolean(self, inst):
        assert full_schedule(inst).is_valid()
        bad = Schedule(inst)
        bad.add(0, -1.0, 0, 1)
        assert not bad.is_valid(require_complete=False)


class TestTransformations:
    def test_shifted(self, inst):
        sched = full_schedule(inst)
        moved = sched.shifted(10.0)
        assert moved.makespan() == pytest.approx(13.5)
        assert moved.entry_for(0).start == pytest.approx(10.0)

    def test_merged_with(self, inst):
        first = Schedule(inst, algorithm="x")
        first.add(0, 0.0, 0, 2)
        second = Schedule(inst)
        second.add(1, 0.0, 2, 2)
        second.add(2, 2.5, 0, 1)
        merged = first.merged_with(second)
        assert merged.is_complete()
        assert merged.algorithm == "x"

    def test_merged_with_other_instance_rejected(self, inst):
        other = Instance([MalleableTask("z", [1.0] * 4)], 4)
        with pytest.raises(ModelError):
            Schedule(inst).merged_with(Schedule(other))

    def test_dict_round_trip(self, inst):
        sched = full_schedule(inst)
        clone = Schedule.from_dict(inst, sched.as_dict())
        assert clone.makespan() == pytest.approx(sched.makespan())
        assert len(clone) == len(sched)
        clone.validate()
