"""Tests for the online-arrival subsystem (repro.online, repro.workloads.arrivals)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidScheduleError, ModelError
from repro.model.instance import Instance, profile_fingerprint
from repro.model.task import MalleableTask
from repro.online import EpochRescheduler, compute_replay_response, replay_from_payload
from repro.service.core import payload_fingerprint
from repro.sim.validate import simulate_and_check
from repro.workloads.arrivals import (
    ARRIVAL_PATTERNS,
    burst_trace,
    diurnal_trace,
    make_trace,
    pareto_trace,
    poisson_trace,
)
from repro.workloads.generators import make_workload


# --------------------------------------------------------------------------- #
# release times on the model
# --------------------------------------------------------------------------- #
class TestReleaseModel:
    def test_default_release_is_zero(self):
        task = MalleableTask("t", [4.0, 2.0])
        assert task.release_time == 0.0

    def test_invalid_release_rejected(self):
        with pytest.raises(ModelError):
            MalleableTask("t", [4.0], release_time=-1.0)
        with pytest.raises(ModelError):
            MalleableTask("t", [4.0], release_time=float("nan"))

    def test_released_copy_and_propagation(self):
        task = MalleableTask("t", [4.0, 2.0]).released(3.0)
        assert task.release_time == 3.0
        assert task.restricted(1).release_time == 3.0
        assert task.scaled(2.0).release_time == 6.0

    def test_release_round_trips_through_json(self):
        task = MalleableTask("t", [4.0, 2.0], release_time=1.25)
        clone = MalleableTask.from_dict(task.as_dict())
        assert clone == task and clone.release_time == 1.25

    def test_release_free_dict_is_byte_identical(self):
        task = MalleableTask("t", [4.0, 2.0])
        assert "release" not in task.as_dict()
        assert task.as_dict() == {"name": "t", "times": [4.0, 2.0]}

    def test_release_distinguishes_tasks(self):
        a = MalleableTask("t", [4.0])
        b = MalleableTask("t", [4.0], release_time=1.0)
        assert a != b and hash(a) != hash(b)

    def test_instance_release_accessors(self):
        base = Instance.from_profiles([[4.0, 2.0], [6.0, 3.5]])
        assert not base.has_releases
        trace = base.with_releases([0.0, 2.0])
        assert trace.has_releases
        assert trace.release_times.tolist() == [0.0, 2.0]
        with pytest.raises(ModelError):
            base.with_releases([1.0])


class TestReleaseFingerprint:
    def test_release_free_fingerprint_unchanged(self):
        """with_releases(zeros) must hash and serialise like the original."""
        base = Instance.from_profiles([[4.0, 2.0], [6.0, 3.5]])
        zero = base.with_releases([0.0, 0.0])
        assert zero.fingerprint() == base.fingerprint()
        assert zero.to_json() == base.to_json()
        assert base.fingerprint() == profile_fingerprint(2, base.times_matrix)

    def test_releases_change_fingerprint(self):
        base = Instance.from_profiles([[4.0, 2.0], [6.0, 3.5]])
        trace = base.with_releases([0.0, 1.0])
        other = base.with_releases([0.0, 2.0])
        assert trace.fingerprint() != base.fingerprint()
        assert trace.fingerprint() != other.fingerprint()

    def test_fingerprint_survives_json_round_trip(self):
        trace = poisson_trace("mixed", 8, 4, seed=7)
        clone = Instance.from_json(trace.to_json())
        assert clone.fingerprint() == trace.fingerprint()
        assert np.array_equal(clone.release_times, trace.release_times)

    def test_payload_fingerprint_covers_releases(self):
        trace = poisson_trace("uniform", 6, 4, seed=3)
        assert payload_fingerprint(trace.as_dict()) == trace.fingerprint()
        release_free = Instance(
            [t.released(0.0) for t in trace.tasks], trace.num_procs
        )
        assert payload_fingerprint(release_free.as_dict()) != trace.fingerprint()

    def test_payload_fingerprint_rejects_bad_release(self):
        payload = Instance.from_profiles([[4.0, 2.0]]).as_dict()
        payload["tasks"][0]["release"] = -1.0
        assert payload_fingerprint(payload) is None


# --------------------------------------------------------------------------- #
# schedule/sim release validation
# --------------------------------------------------------------------------- #
class TestReleaseValidation:
    def test_validate_catches_early_start(self):
        trace = Instance.from_profiles([[4.0, 2.0]]).with_releases([3.0])
        from repro.model.schedule import Schedule

        schedule = Schedule(trace)
        schedule.add(0, 0.0, 0, 1)
        schedule.validate()  # offline view: fine
        with pytest.raises(InvalidScheduleError, match="release"):
            schedule.validate(respect_release=True)
        with pytest.raises(InvalidScheduleError):
            simulate_and_check(schedule, respect_release=True)

    def test_validate_accepts_on_time_start(self):
        trace = Instance.from_profiles([[4.0, 2.0]]).with_releases([3.0])
        from repro.model.schedule import Schedule

        schedule = Schedule(trace)
        schedule.add(0, 3.0, 0, 1)
        schedule.validate(respect_release=True)
        simulate_and_check(schedule, respect_release=True)


# --------------------------------------------------------------------------- #
# arrival-trace generators
# --------------------------------------------------------------------------- #
class TestArrivalGenerators:
    @pytest.mark.parametrize("pattern", sorted(ARRIVAL_PATTERNS))
    def test_patterns_produce_valid_traces(self, pattern):
        trace = make_trace(pattern, "mixed", 20, 8, seed=11)
        releases = trace.release_times
        assert trace.num_tasks == 20 and trace.num_procs == 8
        assert releases.min() == 0.0 and np.all(releases >= 0.0)
        assert trace.has_releases

    @pytest.mark.parametrize("pattern", sorted(ARRIVAL_PATTERNS))
    def test_patterns_are_deterministic(self, pattern):
        a = make_trace(pattern, "uniform", 12, 6, seed=5)
        b = make_trace(pattern, "uniform", 12, 6, seed=5)
        assert a.fingerprint() == b.fingerprint()

    def test_poisson_rate_controls_span(self):
        slow = poisson_trace("uniform", 30, 8, seed=0, rate=0.1)
        fast = poisson_trace("uniform", 30, 8, seed=0, rate=10.0)
        assert slow.release_times.max() > fast.release_times.max()

    def test_burst_trace_clusters(self):
        trace = burst_trace("uniform", 40, 8, seed=1, bursts=2, jitter=0.001)
        releases = np.sort(trace.release_times)
        gaps = np.diff(releases)
        # one large inter-burst gap dominates the tiny intra-burst jitter
        assert gaps.max() > 10 * np.median(gaps[gaps > 0]) if np.any(gaps > 0) else True

    def test_diurnal_requires_sane_ratio(self):
        with pytest.raises(ModelError):
            diurnal_trace(peak_to_trough=0.5)

    def test_pareto_requires_finite_mean(self):
        with pytest.raises(ModelError):
            pareto_trace(alpha=1.0)
        with pytest.raises(ModelError):
            pareto_trace(alpha=0.5)

    def test_pareto_is_heavier_tailed_than_poisson(self):
        """The heavy tail shows as a larger max/median inter-arrival gap."""
        import numpy as np

        def tail_ratio(trace):
            gaps = np.diff(np.sort(trace.release_times))
            gaps = gaps[gaps > 0]
            return gaps.max() / np.median(gaps)

        ratios_pareto = [
            tail_ratio(pareto_trace("uniform", 60, 8, seed=s, alpha=1.2))
            for s in range(5)
        ]
        ratios_poisson = [
            tail_ratio(poisson_trace("uniform", 60, 8, seed=s)) for s in range(5)
        ]
        assert float(np.median(ratios_pareto)) > float(np.median(ratios_poisson))

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ModelError):
            make_trace("weekly", "mixed", 4, 2)


# --------------------------------------------------------------------------- #
# epoch rescheduling
# --------------------------------------------------------------------------- #
class TestEpochRescheduler:
    @pytest.mark.parametrize("pattern", sorted(ARRIVAL_PATTERNS))
    def test_replay_produces_validated_timeline(self, pattern):
        trace = make_trace(pattern, "mixed", 16, 8, seed=2)
        result = EpochRescheduler("mrt").replay(trace)
        sim = simulate_and_check(result.schedule, respect_release=True)
        assert result.schedule.is_complete()
        assert sim.makespan == pytest.approx(result.makespan, rel=1e-6)
        assert result.num_epochs >= 1
        # every task starts at or after its release
        for entry in result.schedule.entries:
            release = trace.tasks[entry.task_index].release_time
            assert entry.start >= release - 1e-9

    def test_offline_instance_is_single_epoch(self):
        instance = make_workload("uniform", 10, 6, seed=4)
        result = EpochRescheduler("mrt").replay(instance)
        assert result.num_epochs == 1
        assert result.epochs[0].start == 0.0

    def test_epochs_never_overlap(self):
        trace = poisson_trace("mixed", 20, 6, seed=9)
        result = EpochRescheduler("mrt").replay(trace)
        for prev, cur in zip(result.epochs, result.epochs[1:]):
            assert cur.start >= prev.end - 1e-9

    def test_quantum_spaces_epochs(self):
        trace = poisson_trace("uniform", 20, 6, seed=6)
        quantum = float(trace.release_times.max())  # one giant batch window
        result = EpochRescheduler("mrt", quantum=quantum).replay(trace)
        event_driven = EpochRescheduler("mrt").replay(trace)
        assert result.num_epochs <= event_driven.num_epochs
        for prev, cur in zip(result.epochs, result.epochs[1:]):
            assert cur.start >= prev.start + quantum - 1e-9
        simulate_and_check(result.schedule, respect_release=True)

    def test_alternative_kernel(self):
        trace = poisson_trace("uniform", 12, 4, seed=8)
        result = EpochRescheduler("sequential").replay(trace)
        simulate_and_check(result.schedule, respect_release=True)
        assert result.algorithm == "sequential"

    def test_metrics_shape_and_sanity(self):
        trace = poisson_trace("mixed", 14, 6, seed=12)
        result = EpochRescheduler("mrt").replay(trace)
        metrics = result.metrics()
        assert metrics["num_tasks"] == 14
        assert metrics["max_flow"] >= metrics["mean_flow"] > 0
        assert metrics["max_stretch"] >= metrics["mean_stretch"] >= 1.0 - 1e-9
        assert 0.0 < metrics["utilization"] <= 1.0
        flows = result.flow_times()
        assert flows.shape == (14,) and np.all(flows > 0)

    def test_on_epoch_callback_streams(self):
        trace = poisson_trace("uniform", 10, 4, seed=1)
        seen = []
        result = EpochRescheduler("mrt").replay(trace, on_epoch=seen.append)
        assert [e.index for e in seen] == [e.index for e in result.epochs]

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ModelError):
            EpochRescheduler("mrt", quantum=-1.0)

    def test_quantum_boundary_arrival_emits_no_empty_epoch(self):
        """Regression: a last arrival exactly on a quantum boundary must not
        produce a zero-length (zero-task) final epoch — empty slots are
        skipped and the clock only ever moves forward."""
        profiles = [[0.25, 0.25], [0.25, 0.25], [0.25, 0.25], [0.25, 0.25]]
        base = Instance.from_profiles(profiles, require_monotonic=False)
        quantum = 0.1
        # Accumulated clock = 3 * 0.1 carries float drift; the last arrival
        # sits exactly on the drifted boundary AND on the exact product.
        drifted = 0.1 + 0.1 + 0.1
        for boundary in (drifted, 3 * 0.1, 0.3):
            trace = base.with_releases([0.0, 0.0, 0.0, boundary])
            result = EpochRescheduler("mrt", quantum=quantum).replay(trace)
            assert result.schedule.is_complete()
            assert all(e.num_tasks >= 1 for e in result.epochs)
            assert all(e.end > e.start for e in result.epochs)
            assert sum(e.num_tasks for e in result.epochs) == 4
            starts = [e.start for e in result.epochs]
            assert starts == sorted(starts)
            simulate_and_check(result.schedule, respect_release=True)


# --------------------------------------------------------------------------- #
# replay payload layer (service integration)
# --------------------------------------------------------------------------- #
class TestReplayPayload:
    def test_generate_spec(self):
        trace, rescheduler, validate = replay_from_payload(
            {
                "generate": {"pattern": "burst", "tasks": 8, "procs": 4, "seed": 1},
                "quantum": 2.0,
                "validate": True,
            }
        )
        assert trace.num_tasks == 8 and rescheduler.quantum == 2.0 and validate

    def test_explicit_trace(self):
        trace = poisson_trace("uniform", 6, 4, seed=0)
        parsed, rescheduler, validate = replay_from_payload(
            {"trace": trace.as_dict()}
        )
        assert parsed.fingerprint() == trace.fingerprint()
        assert rescheduler.quantum is None and not validate

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"trace": {}, "generate": {}},
            {"generate": {"pattern": "nope"}},
            {"generate": {}, "quantum": "soon"},
            {"generate": {}, "params": 3},
            {"generate": {}, "algorithm": 7},
            {"generate": {}, "kernel": 7},
            {"generate": {}, "kernel": "nope"},
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ModelError):
            replay_from_payload(payload)

    def test_unknown_kernel_error_lists_choices(self):
        with pytest.raises(ModelError, match="availability.*barrier"):
            replay_from_payload({"generate": {}, "kernel": "nope"})

    def test_kernel_selection(self):
        from repro.online import AvailabilityRescheduler

        _, rescheduler, _ = replay_from_payload(
            {"generate": {"tasks": 4, "procs": 2}, "kernel": "availability"}
        )
        assert isinstance(rescheduler, AvailabilityRescheduler)
        _, default, _ = replay_from_payload({"generate": {"tasks": 4, "procs": 2}})
        assert isinstance(default, EpochRescheduler)

    def test_compute_replay_response(self):
        trace, rescheduler, _ = replay_from_payload(
            {"generate": {"pattern": "poisson", "tasks": 6, "procs": 4, "seed": 0}}
        )
        response = compute_replay_response(trace, rescheduler, True)
        assert response["fingerprint"] == trace.fingerprint()
        assert response["validation"]["simulated_makespan"] == pytest.approx(
            response["result"]["makespan"], rel=1e-6
        )
        assert len(response["result"]["epochs"]) == response["result"]["num_epochs"]
        assert response["result"]["schedule"]["entries"]
