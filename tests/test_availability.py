"""Tests for the availability staircase and the availability kernel.

The differential comparison against the barrier kernel lives in
``tests/test_online_differential.py``; this module covers the staircase
(:class:`repro.online.availability.AvailabilityProfile`), the per-processor
``busy_until`` queries it is built from, and the
:class:`~repro.online.availability.AvailabilityRescheduler` unit behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.model.instance import Instance
from repro.online import AvailabilityProfile, AvailabilityRescheduler
from repro.registry import make_scheduler
from repro.sim.engine import simulate_schedule
from repro.sim.validate import simulate_and_check
from repro.workloads.arrivals import make_trace, pareto_trace
from repro.workloads.generators import make_workload


# --------------------------------------------------------------------------- #
# availability staircase properties
# --------------------------------------------------------------------------- #
busy_arrays = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False), min_size=1, max_size=24
)


class TestAvailabilityProfile:
    def test_rejects_bad_input(self):
        with pytest.raises(ModelError):
            AvailabilityProfile([])
        with pytest.raises(ModelError):
            AvailabilityProfile([[1.0, 2.0]])
        with pytest.raises(ModelError):
            AvailabilityProfile([float("inf")])
        with pytest.raises(ModelError):
            AvailabilityProfile([float("nan")])

    def test_block_ready_bounds(self):
        profile = AvailabilityProfile([1.0, 3.0, 0.0], now=0.0)
        assert profile.block_ready(0, 2) == 3.0
        assert profile.block_ready(2, 1) == 0.0
        with pytest.raises(ModelError):
            profile.block_ready(2, 2)
        with pytest.raises(ModelError):
            profile.block_ready(-1, 1)
        with pytest.raises(ModelError):
            profile.block_ready(0, 0)

    def test_floors_at_now(self):
        profile = AvailabilityProfile([0.0, 5.0], now=2.0)
        assert profile.busy_until.tolist() == [2.0, 5.0]
        assert profile.next_free() == 2.0 and profile.drain_time() == 5.0

    @given(busy=busy_arrays, now=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=100, deadline=None)
    def test_free_capacity_nonnegative_and_monotone(self, busy, now):
        """Free capacity is a non-negative, non-decreasing step function."""
        profile = AvailabilityProfile(busy, now)
        horizon = max(max(busy), now) + 1.0
        probes = sorted({now, *busy, now + 1.0, horizon})
        capacities = [profile.free_capacity(t) for t in probes]
        assert all(0 <= c <= profile.num_procs for c in capacities)
        assert capacities == sorted(capacities)
        assert profile.free_capacity(horizon) == profile.num_procs

    @given(busy=busy_arrays, now=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=100, deadline=None)
    def test_steps_are_a_monotone_merge_of_finish_events(self, busy, now):
        """The staircase merges carry-over finish events monotonically."""
        profile = AvailabilityProfile(busy, now)
        steps = profile.steps()
        assert steps[0][0] == profile.now
        assert steps[-1][1] == profile.num_procs  # ends with the full machine
        times = [t for t, _ in steps]
        capacities = [c for _, c in steps]
        assert times == sorted(times) and len(set(times)) == len(times)
        assert capacities == sorted(capacities) and len(set(capacities)) == len(
            capacities
        )
        # every step lands on now or on a carry-over finish event
        finish_events = {profile.now, *np.maximum(np.asarray(busy), now).tolist()}
        assert all(t in finish_events for t in times)
        # and the step capacities match the profile's own query
        for t, c in steps:
            assert profile.free_capacity(t) == c


class TestBusyUntilQueries:
    @pytest.mark.parametrize("seed", range(8))
    def test_busy_until_agrees_with_simulate_schedule(self, seed):
        """Static and simulated per-processor availability agree (8 seeds)."""
        instance = make_workload("mixed", 10, 6, seed=seed)
        schedule = make_scheduler("mrt").schedule(instance)
        sim = simulate_schedule(schedule)
        np.testing.assert_allclose(
            schedule.busy_until(0.0), sim.busy_until(0.0), rtol=0, atol=0
        )
        np.testing.assert_allclose(
            schedule.busy_until(0.0), sim.finish_time, rtol=0, atol=0
        )
        mid = schedule.makespan() / 2.0
        np.testing.assert_allclose(
            schedule.busy_until(mid), sim.busy_until(mid), rtol=0, atol=0
        )

    def test_busy_until_floors_and_ignores_finished_entries(self):
        instance = Instance.from_profiles([[2.0, 1.0], [4.0, 2.0]])
        from repro.model.schedule import Schedule

        schedule = Schedule(instance)
        schedule.add(0, 0.0, 0, 1)  # proc 0 busy until 2
        schedule.add(1, 0.0, 1, 1)  # proc 1 busy until 4
        assert schedule.busy_until(0.0).tolist() == [2.0, 4.0]
        assert schedule.busy_until(3.0).tolist() == [3.0, 4.0]
        assert schedule.busy_until(10.0).tolist() == [10.0, 10.0]

    def test_profile_from_schedule(self):
        instance = Instance.from_profiles([[2.0, 1.0], [4.0, 2.0]])
        from repro.model.schedule import Schedule

        schedule = Schedule(instance)
        schedule.add(0, 0.0, 0, 1)
        schedule.add(1, 0.0, 1, 1)
        profile = AvailabilityProfile.from_schedule(schedule, now=3.0)
        assert profile.busy_until.tolist() == [3.0, 4.0]
        assert profile.free_capacity(3.0) == 1
        assert profile.steps() == [(3.0, 1), (4.0, 2)]


# --------------------------------------------------------------------------- #
# availability kernel unit behaviour
# --------------------------------------------------------------------------- #
class TestAvailabilityRescheduler:
    def test_offline_instance_is_single_epoch(self):
        instance = make_workload("uniform", 10, 6, seed=4)
        result = AvailabilityRescheduler("mrt").replay(instance)
        assert result.num_epochs == 1
        assert result.epochs[0].start == 0.0
        assert result.kernel == "availability"

    @pytest.mark.parametrize("fallback", [True, False])
    def test_replay_produces_validated_timeline(self, fallback):
        trace = pareto_trace("mixed", 16, 8, seed=2)
        result = AvailabilityRescheduler("mrt", fallback=fallback).replay(trace)
        sim = simulate_and_check(result.schedule, respect_release=True)
        assert result.schedule.is_complete()
        assert sim.makespan == pytest.approx(result.makespan, rel=1e-6)
        for entry in result.schedule.entries:
            release = trace.tasks[entry.task_index].release_time
            assert entry.start >= release - 1e-9

    def test_partial_carryover_starts_work_before_drain(self):
        """The whole point: some epoch starts while the machine is busy.

        A long sequential task plus later short arrivals force the barrier
        to wait for a full drain; the availability kernel must start at
        least one task strictly before the previous epoch's batch ends.
        """
        profiles = [[20.0, 20.0], [1.0, 1.0], [1.0, 1.0]]
        trace = Instance.from_profiles(profiles, require_monotonic=False).with_releases(
            [0.0, 1.0, 2.0]
        )
        result = AvailabilityRescheduler("mrt", fallback=False).replay(trace)
        simulate_and_check(result.schedule, respect_release=True)
        long_end = result.schedule.entry_for(0).end
        earliest_short = min(
            result.schedule.entry_for(1).start, result.schedule.entry_for(2).start
        )
        assert earliest_short < long_end - 1.0

    def test_every_task_scheduled_exactly_once(self):
        trace = make_trace("burst", "mixed", 20, 8, seed=7)
        result = AvailabilityRescheduler("mrt", fallback=False).replay(trace)
        indices = sorted(e.task_index for e in result.schedule.entries)
        assert indices == list(range(20))
        assert sum(e.num_tasks for e in result.epochs) == 20

    def test_quantum_spaces_commitment_epochs(self):
        trace = make_trace("poisson", "uniform", 20, 6, seed=6)
        quantum = float(trace.release_times.max())  # one giant batch window
        result = AvailabilityRescheduler("mrt", quantum=quantum).replay(trace)
        event_driven = AvailabilityRescheduler("mrt").replay(trace)
        assert result.num_epochs <= max(event_driven.num_epochs, 2)
        simulate_and_check(result.schedule, respect_release=True)

    def test_on_epoch_streams_chosen_epochs(self):
        trace = make_trace("poisson", "uniform", 10, 4, seed=1)
        seen = []
        result = AvailabilityRescheduler("mrt").replay(trace, on_epoch=seen.append)
        assert [e.index for e in seen] == [e.index for e in result.epochs]

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ModelError):
            AvailabilityRescheduler("mrt", quantum=-1.0)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ModelError):
            AvailabilityRescheduler("nope")

    def test_fallback_never_loses_to_barrier(self):
        from repro.online import EpochRescheduler

        for seed in range(4):
            trace = make_trace("burst", "mixed", 14, 6, seed=seed)
            barrier = EpochRescheduler("mrt").replay(trace)
            avail = AvailabilityRescheduler("mrt").replay(trace)
            assert float(avail.flow_times().mean()) <= float(
                barrier.flow_times().mean()
            ) + 1e-9
