"""Tests for the makespan lower bounds (repro.lower_bounds)."""

from __future__ import annotations

import pytest

from repro import (
    GangScheduler,
    Instance,
    MalleableTask,
    MRTScheduler,
    SequentialLPTScheduler,
    best_lower_bound,
    canonical_area_lower_bound,
    mixed_instance,
    squashed_area_lower_bound,
    trivial_lower_bound,
)
from repro.baselines.optimal import optimal_schedule


class TestTrivialBound:
    def test_single_perfect_task(self):
        inst = Instance([MalleableTask.constant_work("t", 8.0, 4)], 4)
        assert trivial_lower_bound(inst) == pytest.approx(2.0)

    def test_rigid_task_dominates(self):
        inst = Instance(
            [MalleableTask.rigid("big", 5.0, 4), MalleableTask.rigid("small", 1.0, 4)],
            4,
        )
        assert trivial_lower_bound(inst) == pytest.approx(5.0)


class TestCanonicalAreaBound:
    def test_dominates_trivial(self, medium_instance):
        assert canonical_area_lower_bound(medium_instance) >= trivial_lower_bound(
            medium_instance
        ) - 1e-9

    def test_equals_trivial_when_trivial_feasible(self):
        inst = Instance([MalleableTask.rigid("t", 3.0, 2)], 2)
        assert canonical_area_lower_bound(inst) == pytest.approx(3.0)

    def test_tighter_on_parallel_overhead(self):
        """When parallelising is costly the Property-2 bound exceeds the area bound."""
        # Two tasks of sequential time 2 on m=2: area bound = 2, max t_i(m) = 1.5.
        # But to finish by 2 both can run sequentially: bound stays 2. Make the
        # deadline force parallelism: three tasks, m=2.
        tasks = [MalleableTask("t%d" % i, [2.0, 1.5]) for i in range(3)]
        inst = Instance(tasks, 2)
        trivial = trivial_lower_bound(inst)  # area = 3
        tight = canonical_area_lower_bound(inst)
        assert tight >= trivial - 1e-9

    def test_is_a_true_lower_bound_small_instances(self):
        """The bound never exceeds the exact optimum."""
        for seed in range(4):
            inst = mixed_instance(5, 4, seed=seed)
            opt = optimal_schedule(inst).makespan()
            assert canonical_area_lower_bound(inst) <= opt + 1e-6


class TestSquashedBound:
    def test_at_least_min_time(self, medium_instance):
        assert squashed_area_lower_bound(medium_instance) >= medium_instance.max_min_time() - 1e-9

    def test_is_lower_bound_small_instances(self):
        for seed in range(3):
            inst = mixed_instance(5, 4, seed=100 + seed)
            opt = optimal_schedule(inst).makespan()
            assert squashed_area_lower_bound(inst) <= opt + 1e-6

    def test_regression_hand_computed_value(self):
        """Pin the bound on an instance where every ingredient is hand-checkable.

        m = 4, tasks:
          a: t = (8, 4, 8/3, 2)   perfectly parallel, W(p) = 8 everywhere
          b: t = (6, 6, 6, 6)     rigid, W(p) = 6p
          c: t = (2, 2, 2, 2)     rigid, W(p) = 2p

        Ingredients:
          * area bound      = (8 + 6 + 2) / 4 = 4
          * per-task bounds = min_p max(t, W/m):
              a -> min(8, 4, 8/3, 2) = 2 (W/m = 2 everywhere)
              b -> p=1: max(6, 1.5) = 6 (work only grows) -> 6
              c -> p=1: max(2, 0.5) = 2 -> 2
          * max_i t_i(m)    = 6
        Bound = max(4, 6, 6) = 6.
        """
        tasks = [
            MalleableTask.constant_work("a", 8.0, 4),
            MalleableTask.rigid("b", 6.0, 4),
            MalleableTask.rigid("c", 2.0, 4),
        ]
        inst = Instance(tasks, 4)
        assert squashed_area_lower_bound(inst) == pytest.approx(6.0)

    def test_squashed_minimiser_area_combination_is_unsound(self):
        """The combination a previous docstring promised would overshoot OPT.

        m = 4, two identical tasks with t = (4, 2.05, 1.4, 1.05), i.e.
        W = (4, 4.1, 4.2, 4.2).  The per-task minimiser of
        max(t(p), W(p)/m) is p̂ = 4 (value 1.05), so the "averaged area of
        the minimisers" would be (4.2 + 4.2) / 4 = 2.1.  But running both
        tasks side by side on 2 processors each finishes at t(2) = 2.05,
        so 2.1 would exceed the optimum: the combination is not a valid
        lower bound and must not be part of squashed_area_lower_bound.
        """
        profile = [4.0, 2.05, 1.4, 1.05]
        inst = Instance(
            [MalleableTask("x", profile), MalleableTask("y", profile)], 4
        )
        makespan_side_by_side = 2.05  # both tasks on 2 procs, in parallel
        unsound = sum(t.work(4) for t in inst.tasks) / inst.num_procs
        assert unsound > makespan_side_by_side  # the would-be bound overshoots
        bound = squashed_area_lower_bound(inst)
        assert bound <= makespan_side_by_side + 1e-9
        # Pinned value: area = (4 + 4) / 4 = 2, per-task = 1.05, t(m) = 1.05.
        assert bound == pytest.approx(2.0)


class TestBestBound:
    def test_best_is_max_of_all(self, small_instance):
        best = best_lower_bound(small_instance)
        assert best >= trivial_lower_bound(small_instance) - 1e-12
        assert best >= canonical_area_lower_bound(small_instance) - 1e-9
        assert best >= squashed_area_lower_bound(small_instance) - 1e-12

    @pytest.mark.parametrize("seed", range(3))
    def test_no_scheduler_beats_the_bound(self, seed):
        inst = mixed_instance(15, 8, seed=seed)
        lb = best_lower_bound(inst)
        for scheduler in (MRTScheduler(), SequentialLPTScheduler(), GangScheduler()):
            assert scheduler.schedule(inst).makespan() >= lb - 1e-6
