"""Tests for the makespan lower bounds (repro.lower_bounds)."""

from __future__ import annotations

import pytest

from repro import (
    GangScheduler,
    Instance,
    MalleableTask,
    MRTScheduler,
    SequentialLPTScheduler,
    best_lower_bound,
    canonical_area_lower_bound,
    mixed_instance,
    squashed_area_lower_bound,
    trivial_lower_bound,
)
from repro.baselines.optimal import optimal_schedule


class TestTrivialBound:
    def test_single_perfect_task(self):
        inst = Instance([MalleableTask.constant_work("t", 8.0, 4)], 4)
        assert trivial_lower_bound(inst) == pytest.approx(2.0)

    def test_rigid_task_dominates(self):
        inst = Instance(
            [MalleableTask.rigid("big", 5.0, 4), MalleableTask.rigid("small", 1.0, 4)],
            4,
        )
        assert trivial_lower_bound(inst) == pytest.approx(5.0)


class TestCanonicalAreaBound:
    def test_dominates_trivial(self, medium_instance):
        assert canonical_area_lower_bound(medium_instance) >= trivial_lower_bound(
            medium_instance
        ) - 1e-9

    def test_equals_trivial_when_trivial_feasible(self):
        inst = Instance([MalleableTask.rigid("t", 3.0, 2)], 2)
        assert canonical_area_lower_bound(inst) == pytest.approx(3.0)

    def test_tighter_on_parallel_overhead(self):
        """When parallelising is costly the Property-2 bound exceeds the area bound."""
        # Two tasks of sequential time 2 on m=2: area bound = 2, max t_i(m) = 1.5.
        # But to finish by 2 both can run sequentially: bound stays 2. Make the
        # deadline force parallelism: three tasks, m=2.
        tasks = [MalleableTask("t%d" % i, [2.0, 1.5]) for i in range(3)]
        inst = Instance(tasks, 2)
        trivial = trivial_lower_bound(inst)  # area = 3
        tight = canonical_area_lower_bound(inst)
        assert tight >= trivial - 1e-9

    def test_is_a_true_lower_bound_small_instances(self):
        """The bound never exceeds the exact optimum."""
        for seed in range(4):
            inst = mixed_instance(5, 4, seed=seed)
            opt = optimal_schedule(inst).makespan()
            assert canonical_area_lower_bound(inst) <= opt + 1e-6


class TestSquashedBound:
    def test_at_least_min_time(self, medium_instance):
        assert squashed_area_lower_bound(medium_instance) >= medium_instance.max_min_time() - 1e-9

    def test_is_lower_bound_small_instances(self):
        for seed in range(3):
            inst = mixed_instance(5, 4, seed=100 + seed)
            opt = optimal_schedule(inst).makespan()
            assert squashed_area_lower_bound(inst) <= opt + 1e-6


class TestBestBound:
    def test_best_is_max_of_all(self, small_instance):
        best = best_lower_bound(small_instance)
        assert best >= trivial_lower_bound(small_instance) - 1e-12
        assert best >= canonical_area_lower_bound(small_instance) - 1e-9
        assert best >= squashed_area_lower_bound(small_instance) - 1e-12

    @pytest.mark.parametrize("seed", range(3))
    def test_no_scheduler_beats_the_bound(self, seed):
        inst = mixed_instance(15, 8, seed=seed)
        lb = best_lower_bound(inst)
        for scheduler in (MRTScheduler(), SequentialLPTScheduler(), GangScheduler()):
            assert scheduler.schedule(inst).makespan() >= lb - 1e-6
