"""Tests for the sharded scheduling cluster (repro.service.cluster)."""

from __future__ import annotations

import json
import time
import urllib.request
from hashlib import blake2b

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ClusterError
from repro.registry import make_scheduler
from repro.service import (
    ServiceClient,
    ServiceHTTPError,
    ShardRing,
    ShardSpec,
    canonical_json,
    start_cluster,
)
from repro.service.cluster import KEY_PREFIX_LEN
from repro.service.cluster.router import routing_info
from repro.workloads.generators import make_workload


def _keys(count: int, tag: str = "key") -> list[str]:
    """Uniform hex keys shaped like instance fingerprints."""
    return [blake2b(f"{tag}-{i}".encode()).hexdigest() for i in range(count)]


# --------------------------------------------------------------------------- #
# consistent-hash ring
# --------------------------------------------------------------------------- #
class TestShardRing:
    def test_empty_ring_cannot_assign(self):
        with pytest.raises(ClusterError):
            ShardRing().assign("abc")

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRing(vnodes=0)
        ring = ShardRing([0, 1])
        with pytest.raises(ValueError):
            ring.add_node(1)
        with pytest.raises(ValueError):
            ring.remove_node(7)

    def test_membership(self):
        ring = ShardRing([0, 1, 2])
        assert len(ring) == 3 and 1 in ring and 7 not in ring
        ring.remove_node(1)
        assert ring.nodes == frozenset({0, 2})

    def test_assignment_uses_key_prefix(self):
        ring = ShardRing(range(4))
        key = _keys(1)[0]
        assert ring.assign(key) == ring.assign(key[:KEY_PREFIX_LEN] + "different-tail")

    @settings(max_examples=25, deadline=None)
    @given(
        nodes=st.lists(st.integers(0, 31), min_size=1, max_size=8, unique=True),
        seed=st.integers(0, 1000),
        data=st.data(),
    )
    def test_assignment_stable_under_node_set_equality(self, nodes, seed, data):
        """The ring is a pure function of the node *set*, not insertion order."""
        shuffled = data.draw(st.permutations(nodes))
        ring_a = ShardRing(nodes)
        ring_b = ShardRing(shuffled)
        for key in _keys(50, tag=f"stab-{seed}"):
            assert ring_a.assign(key) == ring_b.assign(key)

    @settings(max_examples=10, deadline=None)
    @given(shards=st.integers(2, 8), seed=st.integers(0, 100))
    def test_balanced_within_2x_of_ideal_at_64_vnodes(self, shards, seed):
        ring = ShardRing(range(shards), vnodes=64)
        keys = _keys(2000, tag=f"bal-{seed}")
        spread = ring.spread(keys)
        ideal = len(keys) / shards
        assert max(spread.values()) <= 2.0 * ideal
        # Every shard owns a non-empty slice of a 2000-key space.
        assert len(spread) == shards

    @settings(max_examples=10, deadline=None)
    @given(shards=st.integers(2, 8), seed=st.integers(0, 100))
    def test_adding_a_shard_moves_about_one_over_n_keys(self, shards, seed):
        before = ShardRing(range(shards), vnodes=64)
        after = ShardRing(range(shards + 1), vnodes=64)
        keys = _keys(2000, tag=f"move-{seed}")
        moved = [k for k in keys if before.assign(k) != after.assign(k)]
        # Consistent hashing: survivors never migrate between old shards —
        # every moved key lands on the new shard...
        assert all(after.assign(k) == shards for k in moved)
        # ...and only about 1/(N+1) of the key space moves at all.
        assert len(moved) <= 2.0 * len(keys) / (shards + 1)


# --------------------------------------------------------------------------- #
# router content routing
# --------------------------------------------------------------------------- #
class TestRoutingInfo:
    def test_instance_payload_gets_fast_headers(self):
        inst = make_workload("uniform", 5, 4, seed=0)
        body = json.dumps(
            {"algorithm": "mrt", "instance": inst.as_dict(), "params": {"eps": 0.1}}
        ).encode()
        key, headers = routing_info(body)
        assert key == inst.fingerprint()
        assert headers["X-Repro-Fingerprint"] == inst.fingerprint()
        assert headers["X-Repro-Algorithm"] == "mrt"
        assert headers["X-Repro-Params"] == canonical_json({"eps": 0.1})
        assert headers["X-Repro-Validate"] == "0"

    def test_generate_payload_routes_by_canonical_body(self):
        spec_a = {"generate": {"family": "uniform", "tasks": 4}, "algorithm": "mrt"}
        spec_b = {"algorithm": "mrt", "generate": {"tasks": 4, "family": "uniform"}}
        key_a, headers_a = routing_info(json.dumps(spec_a).encode())
        key_b, _ = routing_info(json.dumps(spec_b).encode())
        assert key_a == key_b  # canonical JSON: key order is irrelevant
        assert key_a.startswith("body:")
        assert headers_a == {}

    def test_undecodable_body_is_routed_not_crashed(self):
        key, headers = routing_info(b"\xff\xfe not json")
        assert key.startswith("raw:") and headers == {}

    def test_ill_typed_algorithm_skips_fast_headers(self):
        inst = make_workload("uniform", 4, 4, seed=1)
        body = json.dumps({"algorithm": 7, "instance": inst.as_dict()}).encode()
        key, headers = routing_info(body)
        assert key == inst.fingerprint() and headers == {}


# --------------------------------------------------------------------------- #
# end-to-end cluster (thread backend: identical wire behaviour, fast startup)
# --------------------------------------------------------------------------- #
# Transport matrix: the end-to-end suite runs once per transport, with the
# router *and* every shard on that frontend — wire behaviour must be
# independent of which transport serves the sockets.
@pytest.fixture(scope="class", params=["threaded", "asyncio"])
def cluster(request):
    handle = start_cluster(
        3,
        backend="thread",
        spec=ShardSpec(workers=2, transport=request.param),
        respawn=False,
        allow_shutdown=False,
        transport=request.param,
    )
    yield handle
    handle.close()


@pytest.fixture
def cluster_client(cluster):
    return ServiceClient(cluster.url, retries=0)


class TestClusterEndToEnd:
    def test_healthz_reports_fleet(self, cluster_client):
        health = cluster_client.healthz()
        assert health["status"] == "ok"
        assert health["shards"] == 3 and health["alive"] == 3

    def test_replay_hits_and_matches_direct_scheduler(self, cluster_client):
        instances = [make_workload("mixed", 8, 6, seed=s) for s in range(6)]
        firsts = [cluster_client.schedule(inst) for inst in instances]
        replays = [cluster_client.schedule(inst) for inst in instances]
        assert all(not r["cache_hit"] for r in firsts)
        assert all(r["cache_hit"] for r in replays)
        for inst, first, replay in zip(instances, firsts, replays):
            assert canonical_json(first["result"]) == canonical_json(replay["result"])
            direct = make_scheduler("mrt").schedule(inst)
            assert first["result"]["makespan"] == direct.makespan()
            assert canonical_json(first["result"]["schedule"]) == canonical_json(
                direct.as_dict()
            )

    def test_metrics_aggregate_and_keys_spread(self, cluster_client):
        # Self-contained traffic (fresh seeds): 6 misses + 6 fast-path hits.
        for seed in range(100, 106):
            inst = make_workload("mixed", 8, 6, seed=seed)
            cluster_client.schedule(inst)
            assert cluster_client.schedule(inst)["cache_hit"]
        metrics = cluster_client.metrics()
        cluster_view = metrics["cluster"]
        assert cluster_view["shards"] == 3
        # Satellite: the metrics body carries the rolled-up cache stats.
        for key in ("hits", "misses", "hit_rate", "evictions_lru", "evictions_ttl",
                    "expired_purged", "size"):
            assert key in cluster_view["cache"]
        assert cluster_view["cache"]["hits"] >= 6
        assert cluster_view["fast_hits"] >= 6  # replays served on the fast path
        route_cache = metrics["router"]["route_cache"]
        assert route_cache["hits"] >= 6  # replays skip parse + fingerprint
        per_shard = metrics["router"]["per_shard"]
        assert sum(e["requests"] for e in per_shard.values()) >= 12
        assert len([e for e in per_shard.values() if e["requests"]]) >= 2
        assert metrics["imbalance"]["max_over_ideal"] is not None
        assert set(metrics["shards"]) == {"0", "1", "2"}
        assert all(view["alive"] for view in metrics["shards"].values())

    def test_generate_spec_replay_hits_same_shard_cache(self, cluster_client):
        spec = {"family": "uniform", "tasks": 5, "procs": 4, "seed": 9}
        first = cluster_client.schedule(generate=spec)
        replay = cluster_client.schedule(generate=spec)
        assert not first["cache_hit"] and replay["cache_hit"]
        assert canonical_json(first["result"]) == canonical_json(replay["result"])

    def test_malformed_request_is_400_from_owning_shard(self, cluster_client):
        with pytest.raises(ServiceHTTPError) as err:
            cluster_client.schedule_payload({"nonsense": True})
        assert err.value.status == 400
        with pytest.raises(ServiceHTTPError) as err:
            cluster_client.schedule_payload({"instance": {"num_procs": 0, "tasks": []}})
        assert err.value.status == 400

    def test_unknown_path_is_404(self, cluster_client):
        with pytest.raises(ServiceHTTPError) as err:
            cluster_client._request("/nope")
        assert err.value.status == 404

    def test_shutdown_forbidden_when_disabled(self, cluster_client):
        with pytest.raises(ServiceHTTPError) as err:
            cluster_client.shutdown()
        assert err.value.status == 403

    def test_purge_message_fans_out(self, cluster):
        # Runs last in its own cluster-wide namespace: wipe everything and
        # verify the next replay is a miss again (shared-nothing eviction).
        client = ServiceClient(cluster.url, retries=0)
        inst = make_workload("heavy-tailed", 6, 4, seed=42)
        client.schedule(inst)
        assert client.schedule(inst)["cache_hit"]
        report = client.purge(all=True)
        assert set(report["shards"]) == {"0", "1", "2"}
        assert report["cleared"] >= 1
        assert client.schedule(inst)["cache_hit"] is False


# --------------------------------------------------------------------------- #
# supervisor respawn (process backend where the sandbox allows it)
# --------------------------------------------------------------------------- #
class TestRespawn:
    def test_killed_shard_is_respawned_and_traffic_recovers(self):
        handle = start_cluster(2, backend="process", spec=ShardSpec(workers=2))
        try:
            if handle.supervisor.backend != "process":
                pytest.skip("process backend unavailable in this sandbox")
            client = ServiceClient(handle.url)  # default retries absorb the gap
            inst = make_workload("mixed", 6, 4, seed=3)
            assert client.schedule(inst)["result"]["makespan"] > 0
            for shard in handle.supervisor._handles.values():
                shard.process.kill()
            deadline = time.monotonic() + 20.0
            while handle.supervisor.respawns < 2 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert handle.supervisor.respawns >= 2, "monitor never respawned shards"
            # The replacement shard starts cold (its cache slice died with
            # the process) but traffic flows again.
            response = client.schedule(inst)
            assert response["result"]["makespan"] > 0
            assert handle.supervisor.alive_count() == 2
        finally:
            handle.close()


# --------------------------------------------------------------------------- #
# thread-backend liveness detection (no subprocess required)
# --------------------------------------------------------------------------- #
class TestThreadBackendRespawn:
    def test_dead_thread_shard_is_respawned(self):
        handle = start_cluster(2, backend="thread", spec=ShardSpec(workers=2))
        try:
            victim = handle.supervisor._handles[0]
            victim._server.close()  # simulate a crash: serve loop exits
            deadline = time.monotonic() + 20.0
            while handle.supervisor.respawns < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert handle.supervisor.respawns >= 1
            client = ServiceClient(handle.url)
            inst = make_workload("uniform", 5, 4, seed=8)
            assert client.schedule(inst)["result"]["makespan"] > 0
        finally:
            handle.close()


# --------------------------------------------------------------------------- #
# client 503 retry with capped jittered backoff
# --------------------------------------------------------------------------- #
class TestClientRetries:
    @pytest.fixture
    def flaky_server(self):
        """HTTP stub that 503s the first two /schedule POSTs, then 200s."""
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class Handler(BaseHTTPRequestHandler):
            hits = {"count": 0}

            def log_message(self, *args):  # noqa: A002
                pass

            def do_POST(self):
                self.rfile.read(int(self.headers.get("Content-Length", 0) or 0))
                Handler.hits["count"] += 1
                if Handler.hits["count"] <= 2:
                    body = json.dumps({"error": "overloaded; retry later"}).encode()
                    self.send_response(503)
                else:
                    body = json.dumps({"ok": True}).encode()
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server, Handler.hits
        server.shutdown()
        server.server_close()

    def test_retries_absorb_503s(self, flaky_server):
        server, hits = flaky_server
        host, port = server.server_address[:2]
        client = ServiceClient(
            f"http://{host}:{port}", retries=3, backoff=0.01, backoff_cap=0.05
        )
        assert client.schedule_payload({"x": 1}) == {"ok": True}
        assert hits["count"] == 3
        assert client.retries_total == 2

    def test_zero_retries_fail_fast(self, flaky_server):
        server, hits = flaky_server
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", retries=0)
        with pytest.raises(ServiceHTTPError) as err:
            client.schedule_payload({"x": 1})
        assert err.value.status == 503
        assert hits["count"] == 1 and client.retries_total == 0

    def test_retry_config_validation(self):
        with pytest.raises(ValueError):
            ServiceClient("http://x", retries=-1)
        with pytest.raises(ValueError):
            ServiceClient("http://x", backoff=0.0)


# --------------------------------------------------------------------------- #
# shard fast path over raw HTTP (trusted headers)
# --------------------------------------------------------------------------- #
class TestShardFastPath:
    def test_fast_headers_hit_without_body_parse(self):
        from repro.service import SchedulerService
        from repro.service.server import ServiceHTTPServer
        import threading

        service = SchedulerService(workers=2)
        server = ServiceHTTPServer(
            ("127.0.0.1", 0), service, trust_fast_headers=True
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}/schedule"
            inst = make_workload("mixed", 6, 5, seed=21)
            body = json.dumps({"algorithm": "mrt", "instance": inst.as_dict()}).encode()
            headers = {
                "Content-Type": "application/json",
                "X-Repro-Fingerprint": inst.fingerprint(),
                "X-Repro-Algorithm": "mrt",
                "X-Repro-Params": "{}",
                "X-Repro-Validate": "0",
            }

            def post(with_headers: bool) -> dict:
                request = urllib.request.Request(
                    url, data=body, headers=headers if with_headers else {}
                )
                with urllib.request.urlopen(request, timeout=60) as response:
                    return json.loads(response.read())

            # Cold probe with trusted headers: MISS falls through to the
            # full pipeline (the body is parsed, the request computed).
            first = post(with_headers=True)
            assert first["cache_hit"] is False
            assert service.metrics()["fast_hits"] == 0
            # Warm probe: served from the handler thread.
            replay = post(with_headers=True)
            assert replay["cache_hit"] is True
            assert canonical_json(first["result"]) == canonical_json(replay["result"])
            assert service.metrics()["fast_hits"] == 1
            # A fast-path miss must not double-count misses in the stats.
            assert service.cache.stats.misses == 1
        finally:
            server.close()

    def test_headers_ignored_without_trust(self):
        from repro.service import start_background_server

        server, _ = start_background_server()  # trust_fast_headers defaults off
        try:
            host, port = server.server_address[:2]
            inst = make_workload("uniform", 5, 4, seed=22)
            client = ServiceClient(f"http://{host}:{port}")
            client.schedule(inst)
            body = json.dumps({"algorithm": "mrt", "instance": inst.as_dict()}).encode()
            request = urllib.request.Request(
                f"http://{host}:{port}/schedule",
                data=body,
                headers={
                    "Content-Type": "application/json",
                    "X-Repro-Fingerprint": inst.fingerprint(),
                },
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                replay = json.loads(response.read())
            assert replay["cache_hit"] is True  # normal dispatcher hit
            assert server.service.metrics()["fast_hits"] == 0
        finally:
            server.close()
