"""Cross-module integration tests: algorithms → schedules → simulator → metrics."""

from __future__ import annotations

import math

import pytest

from repro import (
    GangScheduler,
    LudwigScheduler,
    MRTScheduler,
    SequentialLPTScheduler,
    TurekScheduler,
    best_lower_bound,
    evaluate_schedule,
    gantt_chart,
    mixed_instance,
    ocean_instance,
    simulate_and_check,
)
from repro.analysis.experiments import run_comparison
from repro.core.canonical_list import CanonicalListScheduler
from repro.core.malleable_list import MalleableListScheduler
from repro.workloads import (
    heavy_tailed_instance,
    rigid_heavy_instance,
    shelf_overflow_instance,
)

SQRT3 = math.sqrt(3.0)

ALL_SCHEDULERS = [
    MRTScheduler(),
    MalleableListScheduler(),
    CanonicalListScheduler(),
    TurekScheduler(max_candidates=64),
    LudwigScheduler(),
    SequentialLPTScheduler(),
    GangScheduler(),
]


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
@pytest.mark.parametrize(
    "factory",
    [
        lambda: mixed_instance(18, 12, seed=0),
        lambda: heavy_tailed_instance(15, 16, seed=1),
        lambda: rigid_heavy_instance(15, 8, seed=2),
        lambda: ocean_instance(16, blocks=4, seed=3),
    ],
    ids=["mixed", "heavy", "rigid", "ocean"],
)
def test_end_to_end_schedule_simulate_evaluate(scheduler, factory):
    """Every scheduler × workload: schedule, simulate, evaluate, render."""
    instance = factory()
    schedule = scheduler.schedule(instance)
    schedule.validate()
    assert schedule.is_complete()
    result = simulate_and_check(schedule)
    metrics = evaluate_schedule(schedule)
    assert metrics.makespan == pytest.approx(result.makespan)
    assert metrics.ratio >= 1.0 - 1e-9
    chart = gantt_chart(schedule)
    assert "makespan=" in chart


def test_mrt_dominates_naive_baselines_on_average():
    """EXP-A sanity: the √3 algorithm beats gang and sequential on mixed workloads."""
    instances = [mixed_instance(25, 16, seed=s) for s in range(3)]
    comparison = run_comparison(
        instances, [MRTScheduler(), GangScheduler(), SequentialLPTScheduler()]
    )
    mean = {a: comparison.ratios(a).mean() for a in comparison.algorithms()}
    assert mean["mrt-sqrt3"] <= mean["gang"] + 1e-9
    assert mean["mrt-sqrt3"] <= mean["sequential-lpt"] + 1e-9


def test_mrt_never_worse_than_sqrt3_anywhere():
    """The guarantee holds across every workload family exercised here."""
    factories = [
        lambda s: mixed_instance(20, 16, seed=s),
        lambda s: heavy_tailed_instance(20, 16, seed=s),
        lambda s: rigid_heavy_instance(20, 16, seed=s),
        lambda s: shelf_overflow_instance(16, seed=s),
    ]
    for factory in factories:
        for seed in range(2):
            instance = factory(seed)
            schedule = MRTScheduler().schedule(instance)
            assert schedule.makespan() <= SQRT3 * best_lower_bound(instance) * 1.01


def test_mrt_beats_or_matches_two_phase_baselines_in_the_worst_case():
    """The paper's claim: √3 < 2 — the maximum ratio of MRT stays below the
    two-phase baselines' maximum on a common workload battery."""
    instances = [mixed_instance(20, 16, seed=s) for s in range(4)] + [
        heavy_tailed_instance(20, 16, seed=s) for s in range(4)
    ]
    comparison = run_comparison(
        instances, [MRTScheduler(), LudwigScheduler(), TurekScheduler(max_candidates=64)]
    )
    worst = {a: comparison.ratios(a).max() for a in comparison.algorithms()}
    assert worst["mrt-sqrt3"] <= max(worst["ludwig-ffdh"], worst["turek-ffdh"]) + 1e-9
    assert worst["mrt-sqrt3"] <= SQRT3 * 1.01
