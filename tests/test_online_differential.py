"""Differential conformance suite: availability kernel vs barrier vs offline.

The availability kernel rewrites the hottest correctness-critical path of
the online subsystem (timeline stitching), so this suite pins it against
two independent references:

(a) with all release times zero, *both* kernels reproduce the offline
    scheduler's makespan bit-exactly (the replay degenerates to a single
    epoch whose schedule *is* the offline schedule);
(b) on random Poisson / burst / Pareto traces the availability kernel's
    mean flow time never exceeds the barrier kernel's, and every stitched
    timeline passes ``simulate_and_check(respect_release=True)``;
(c) the kernel choice never changes the ``ReplayResult`` field shapes (nor
    the ``POST /replay`` response shape), so clients cannot observe a
    schema difference between kernels.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.online import (
    AvailabilityRescheduler,
    EpochRescheduler,
    compute_replay_response,
)
from repro.registry import ONLINE_KERNELS, make_rescheduler, make_scheduler
from repro.sim.validate import simulate_and_check
from repro.workloads.arrivals import make_trace
from repro.workloads.generators import WORKLOAD_FAMILIES, make_workload

FAMILIES = sorted(WORKLOAD_FAMILIES)

offline_instances = st.builds(
    make_workload,
    st.sampled_from(FAMILIES),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)

random_traces = st.builds(
    make_trace,
    st.sampled_from(["poisson", "burst", "pareto"]),
    st.sampled_from(FAMILIES),
    st.integers(min_value=3, max_value=12),
    st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestOfflineConformance:
    @given(instance=offline_instances)
    @settings(max_examples=25, deadline=None)
    def test_zero_releases_reproduce_offline_makespan_bit_exactly(self, instance):
        """(a) both kernels degenerate to the offline schedule at releases 0."""
        offline = make_scheduler("mrt").schedule(instance)
        for kernel in ONLINE_KERNELS:
            result = make_rescheduler(kernel, "mrt").replay(instance)
            assert result.makespan == offline.makespan()  # bit-exact, no approx
            assert result.num_epochs == 1

    def test_zero_releases_reproduce_offline_entries(self):
        """Stronger anchor on a few seeds: the *entries* coincide, not just
        the makespan."""
        for seed in range(4):
            instance = make_workload("mixed", 12, 8, seed=seed)
            offline = make_scheduler("mrt").schedule(instance)
            reference = [
                (e.task_index, e.start, e.first_proc, e.num_procs, e.duration)
                for e in offline.entries
            ]
            for kernel in ONLINE_KERNELS:
                result = make_rescheduler(kernel, "mrt").replay(instance)
                stitched = [
                    (e.task_index, e.start, e.first_proc, e.num_procs, e.duration)
                    for e in result.schedule.entries
                ]
                assert sorted(stitched) == sorted(reference)


class TestFlowDominance:
    @given(trace=random_traces)
    @settings(max_examples=25, deadline=None)
    def test_availability_flow_never_exceeds_barrier(self, trace):
        """(b) mean-flow dominance + validated stitched timelines."""
        barrier = EpochRescheduler("mrt").replay(trace)
        avail = AvailabilityRescheduler("mrt").replay(trace)
        simulate_and_check(barrier.schedule, respect_release=True)
        simulate_and_check(avail.schedule, respect_release=True)
        assert float(avail.flow_times().mean()) <= float(
            barrier.flow_times().mean()
        ) + 1e-9

    @given(trace=random_traces, quantum_tenths=st.integers(min_value=1, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_dominance_holds_under_quantum_batching(self, trace, quantum_tenths):
        span = float(trace.release_times.max())
        if span <= 0:
            return
        quantum = span * quantum_tenths / 10.0
        barrier = EpochRescheduler("mrt", quantum=quantum).replay(trace)
        avail = AvailabilityRescheduler("mrt", quantum=quantum).replay(trace)
        simulate_and_check(avail.schedule, respect_release=True)
        assert float(avail.flow_times().mean()) <= float(
            barrier.flow_times().mean()
        ) + 1e-9


class TestShapeConformance:
    @pytest.fixture(scope="class")
    def results(self):
        trace = make_trace("poisson", "mixed", 10, 6, seed=5)
        return trace, {
            kernel: make_rescheduler(kernel, "mrt").replay(trace)
            for kernel in ONLINE_KERNELS
        }

    def test_replay_result_fields_identical(self, results):
        """(c) the dataclass fields and metric keys match across kernels."""
        _, by_kernel = results
        field_names = {
            kernel: [f.name for f in dataclasses.fields(result)]
            for kernel, result in by_kernel.items()
        }
        assert len({tuple(names) for names in field_names.values()}) == 1
        metric_keys = {
            kernel: sorted(result.metrics()) for kernel, result in by_kernel.items()
        }
        assert len({tuple(keys) for keys in metric_keys.values()}) == 1
        epoch_keys = {
            kernel: sorted(result.epochs[0].as_dict())
            for kernel, result in by_kernel.items()
        }
        assert len({tuple(keys) for keys in epoch_keys.values()}) == 1

    def test_replay_response_shape_identical(self, results):
        trace, _ = results
        shapes = []
        for kernel in ONLINE_KERNELS:
            response = compute_replay_response(
                trace, make_rescheduler(kernel, "mrt"), True
            )
            shapes.append(
                (
                    sorted(response),
                    sorted(response["result"]),
                    sorted(response["validation"]),
                    sorted(response["result"]["epochs"][0]),
                    sorted(response["result"]["schedule"]),
                )
            )
            assert response["result"]["kernel"] == kernel
        assert shapes[0] == shapes[1]

    def test_metrics_report_the_kernel_name(self, results):
        _, by_kernel = results
        for kernel, result in by_kernel.items():
            assert result.metrics()["kernel"] == kernel
            assert result.kernel == kernel

    def test_registry_names_match_kernel_factories(self):
        """ONLINE_KERNELS (CLI choices) and the factory classes cannot drift."""
        from repro.online import AvailabilityRescheduler, EpochRescheduler

        assert set(ONLINE_KERNELS) == {
            AvailabilityRescheduler.kernel,
            EpochRescheduler.kernel,
        }
        for kernel in ONLINE_KERNELS:
            assert make_rescheduler(kernel, "mrt").kernel == kernel

    def test_schedule_tag_is_consistent_even_on_fallback(self):
        """The availability kernel never leaks barrier metadata: whatever
        timeline the no-regret guard adopts is labelled availability-*."""
        for seed in range(6):
            trace = make_trace("poisson", "mixed", 14, 8, seed=seed)
            result = AvailabilityRescheduler("mrt").replay(trace)
            assert result.kernel == "availability"
            assert result.schedule.algorithm == "availability-mrt"

    def test_epoch_reports_never_double_count_committed_work(self):
        """Per-epoch makespan is the committed span, and the per-epoch task
        counts add up to the trace exactly (deferred work is reported once,
        by the epoch that commits it)."""
        for seed in range(4):
            trace = make_trace("pareto", "mixed", 16, 6, seed=seed)
            result = AvailabilityRescheduler("mrt", fallback=False).replay(trace)
            assert sum(e.num_tasks for e in result.epochs) == trace.num_tasks
            for epoch in result.epochs:
                assert epoch.makespan == pytest.approx(epoch.end - epoch.start)
