"""Tests for the Canonical List Algorithm (Section 3.2, Theorem 2, Lemma 1)."""

from __future__ import annotations

import math

import pytest

from repro import CanonicalListScheduler, best_lower_bound, mixed_instance
from repro.core.canonical_list import (
    MU_STAR,
    CanonicalListDual,
    canonical_list_schedule,
    first_two_level_completion,
    outside_levels_are_small_sequential,
)
from repro.core.list_scheduling import compute_levels
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.adversarial import property3_stress_instances


class TestCanonicalListSchedule:
    def test_mu_star_value(self):
        assert MU_STAR == pytest.approx(math.sqrt(3) / 2)

    def test_none_on_infeasible_guess(self, medium_instance):
        assert canonical_list_schedule(medium_instance, 1e-9) is None
        assert canonical_list_schedule(medium_instance, -1.0) is None

    @pytest.mark.parametrize("seed", range(4))
    def test_valid_complete_schedule(self, seed):
        inst = mixed_instance(18, 12, seed=seed)
        guess = canonical_area_lower_bound(inst) * 1.3
        schedule = canonical_list_schedule(inst, guess)
        if schedule is None:
            pytest.skip("guess infeasible for the canonical allotment")
        schedule.validate()
        assert schedule.is_complete()

    def test_every_task_uses_canonical_allotment(self, medium_instance):
        guess = canonical_area_lower_bound(medium_instance) * 1.2
        schedule = canonical_list_schedule(medium_instance, guess)
        assert schedule is not None
        for entry in schedule.entries:
            task = medium_instance.tasks[entry.task_index]
            assert entry.num_procs == task.canonical_procs(guess)

    def test_tasks_with_time_above_half_on_first_level(self):
        """Tasks of canonical time > d/2 land on the first level when OPT <= d.

        This is the structural fact behind Lemma 1: only small sequential
        tasks can be pushed above the first level.
        """
        for inst in property3_stress_instances(12, MU_STAR, trials=10, rng=5):
            schedule = canonical_list_schedule(inst, 1.0)
            if schedule is None:
                continue
            levels = compute_levels(schedule)
            for entry in schedule.entries:
                t = inst.tasks[entry.task_index].canonical_time(1.0)
                if t is not None and t > 0.5 + 1e-9 and levels[entry.task_index] > 1:
                    # Such a violation would contradict the witness construction.
                    pytest.fail("a long task was pushed above the first level")

    def test_lemma1_outside_levels_small_sequential(self):
        """Lemma 1: tasks outside the first two levels are sequential and short."""
        for inst in property3_stress_instances(16, MU_STAR, trials=10, rng=9):
            schedule = canonical_list_schedule(inst, 1.0)
            if schedule is None:
                continue
            assert outside_levels_are_small_sequential(schedule, 1.0)

    def test_first_two_level_completion_bounded_by_makespan(self, medium_instance):
        guess = canonical_area_lower_bound(medium_instance) * 1.5
        schedule = canonical_list_schedule(medium_instance, guess)
        assert schedule is not None
        assert first_two_level_completion(schedule) <= schedule.makespan() + 1e-9


class TestCanonicalListDual:
    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            CanonicalListDual(mu=0.4)
        with pytest.raises(ValueError):
            CanonicalListDual(mu=1.1)

    def test_accepts_only_within_target(self, medium_instance):
        dual = CanonicalListDual()
        lb = canonical_area_lower_bound(medium_instance)
        for factor in (1.0, 1.3, 2.0, 4.0):
            schedule = dual.run(medium_instance, lb * factor)
            if schedule is not None:
                assert schedule.makespan() <= dual.rho * lb * factor + 1e-6

    def test_rho_is_two_mu(self):
        dual = CanonicalListDual(mu=0.9)
        assert dual.rho == pytest.approx(1.8)


class TestCanonicalListScheduler:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_and_reasonable(self, seed):
        inst = mixed_instance(16, 16, seed=seed)
        scheduler = CanonicalListScheduler()
        schedule = scheduler.schedule(inst)
        schedule.validate()
        lb = best_lower_bound(inst)
        # unconditional fallback keeps the ratio within 2 (plus search slack)
        assert schedule.makespan() <= 2.01 * lb * (1 + 1e-3) or schedule.makespan() <= 2.01 * scheduler.last_result.best_guess

    def test_theorem2_bound_when_hypotheses_hold(self):
        """When W_m <= mu*m*d at the accepted guess, makespan <= 2*mu*d."""
        inst = mixed_instance(25, 16, seed=42)
        scheduler = CanonicalListScheduler(eps=1e-3)
        schedule = scheduler.schedule(inst)
        d = scheduler.last_result.best_guess
        area = inst.mu_area(d)
        if area is not None and area <= MU_STAR * inst.num_procs * d:
            assert schedule.makespan() <= 2 * MU_STAR * d * (1 + 1e-6)
