"""Unit tests for Allotment (repro.model.allotment)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Allotment, Instance, MalleableTask, ModelError


@pytest.fixture
def inst() -> Instance:
    tasks = [
        MalleableTask("a", [6.0, 3.5, 2.5, 2.0]),
        MalleableTask("b", [4.0, 2.5, 2.0, 1.8]),
        MalleableTask("c", [1.0, 0.9, 0.85, 0.8]),
    ]
    return Instance(tasks, 4)


class TestConstruction:
    def test_basic(self, inst):
        allot = Allotment(inst, [2, 1, 1])
        assert len(allot) == 3
        assert allot[0] == 2
        assert list(allot) == [2, 1, 1]

    def test_wrong_length(self, inst):
        with pytest.raises(ModelError):
            Allotment(inst, [1, 1])

    def test_out_of_range(self, inst):
        with pytest.raises(ModelError):
            Allotment(inst, [0, 1, 1])
        with pytest.raises(ModelError):
            Allotment(inst, [1, 5, 1])

    def test_readonly(self, inst):
        allot = Allotment(inst, [1, 1, 1])
        with pytest.raises(ValueError):
            allot.procs[0] = 3

    def test_equality(self, inst):
        assert Allotment(inst, [1, 2, 3]) == Allotment(inst, [1, 2, 3])
        assert Allotment(inst, [1, 2, 3]) != Allotment(inst, [1, 2, 2])


class TestConstructors:
    def test_sequential(self, inst):
        allot = Allotment.sequential(inst)
        assert np.all(allot.procs == 1)

    def test_gang(self, inst):
        allot = Allotment.gang(inst)
        assert np.all(allot.procs == 4)

    def test_canonical(self, inst):
        allot = Allotment.canonical(inst, 2.5)
        assert allot is not None
        assert allot[0] == 3  # task a needs 3 processors for t <= 2.5
        assert allot[1] == 2
        assert allot[2] == 1

    def test_canonical_infeasible(self, inst):
        assert Allotment.canonical(inst, 0.5) is None


class TestInducedQuantities:
    def test_times_and_works(self, inst):
        allot = Allotment(inst, [2, 1, 1])
        assert allot.times() == pytest.approx([3.5, 4.0, 1.0])
        assert allot.works() == pytest.approx([7.0, 4.0, 1.0])
        assert allot.total_work() == pytest.approx(12.0)
        assert allot.max_time() == pytest.approx(4.0)

    def test_bounds(self, inst):
        allot = Allotment(inst, [2, 1, 1])
        assert allot.area_bound() == pytest.approx(3.0)
        assert allot.lower_bound() == pytest.approx(4.0)

    def test_parallel_and_sequential_indices(self, inst):
        allot = Allotment(inst, [3, 1, 2])
        assert allot.parallel_indices() == [0, 2]
        assert allot.sequential_indices() == [1]

    def test_rectangles(self, inst):
        allot = Allotment(inst, [2, 1, 1])
        rects = allot.rectangles()
        assert rects[0] == (0, 2, pytest.approx(3.5))

    def test_replace(self, inst):
        allot = Allotment(inst, [1, 1, 1])
        other = allot.replace(0, 3)
        assert other[0] == 3 and allot[0] == 1

    def test_monotone_work_in_allotment(self, inst):
        """Work never decreases when any single task gets more processors."""
        base = Allotment.sequential(inst)
        for i in range(len(base)):
            for p in range(2, 5):
                assert base.replace(i, p).total_work() >= base.total_work() - 1e-9
