"""Unit tests for the observability package (`repro.obs`).

Histogram exactness (merge = single observer), tracer determinism, trace
store bounds (the memory-constancy regression for the old unbounded
latency lists) and the Prometheus text exposition.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    BOUNDS_MS,
    LatencyHistogram,
    METRIC_NAMES,
    Trace,
    TraceStore,
    Tracer,
    render_service_metrics,
)
from repro.obs.names import (
    METRICS,
    SPAN_BATCH_COMPUTE,
    SPAN_CACHE_LOOKUP,
    SPAN_PARSE,
    SPAN_QUEUE_WAIT,
)
from repro.service.core import SchedulerService, request_from_payload


# --------------------------------------------------------------------------- #
# histogram
# --------------------------------------------------------------------------- #
class TestLatencyHistogram:
    def test_empty_summary_is_zeroed(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.mean_ms == 0.0
        summary = hist.summary()
        assert summary["count"] == 0 and summary["p50_ms"] == 0.0

    def test_single_observation_is_exact(self):
        hist = LatencyHistogram()
        hist.observe(3.7)
        # Clamping to [min_ms, max_ms] makes single observations exact even
        # though the bucket is ~41% wide.
        assert hist.percentile(50) == pytest.approx(3.7)
        assert hist.percentile(99) == pytest.approx(3.7)
        assert hist.mean_ms == pytest.approx(3.7)

    def test_merge_equals_single_observer(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=1.0, sigma=1.5, size=600)
        parts = [LatencyHistogram() for _ in range(3)]
        whole = LatencyHistogram()
        for i, value in enumerate(samples):
            parts[i % 3].observe(value)
            whole.observe(value)
        merged = LatencyHistogram.merged(p.as_dict() for p in parts)
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.sum_ms == pytest.approx(whole.sum_ms)
        assert merged.min_ms == whole.min_ms
        assert merged.max_ms == whole.max_ms
        for q in (50, 90, 99):
            assert merged.percentile(q) == pytest.approx(whole.percentile(q))

    def test_percentile_tracks_numpy_within_bucket_resolution(self):
        rng = np.random.default_rng(3)
        samples = rng.uniform(0.5, 200.0, size=2000)
        hist = LatencyHistogram()
        for value in samples:
            hist.observe(value)
        for q in (50, 90, 99):
            exact = float(np.percentile(samples, q))
            # Bucket bounds grow by sqrt(2): the estimate can be off by at
            # most one bucket width (~41% relative).
            assert hist.percentile(q) == pytest.approx(exact, rel=0.45)

    def test_memory_is_constant_under_load(self):
        hist = LatencyHistogram()
        for i in range(10_000):
            hist.observe(i * 0.013)
        assert len(hist.counts) == len(BOUNDS_MS) + 1
        assert hist.count == 10_000

    def test_round_trip_and_scheme_guard(self):
        hist = LatencyHistogram()
        for value in (0.1, 1.0, 50.0, 1e6):  # includes the overflow bucket
            hist.observe(value)
        clone = LatencyHistogram.from_dict(hist.as_dict())
        assert clone.as_dict() == hist.as_dict()
        bad = hist.as_dict() | {"scheme": "linear-v0"}
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(bad)
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(hist.as_dict() | {"counts": [0, 1]})


# --------------------------------------------------------------------------- #
# tracing
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_ids_are_deterministic_per_seed(self):
        a = Tracer("service", seed=0)
        b = Tracer("service", seed=0)
        assert [a.next_id() for _ in range(5)] == [b.next_id() for _ in range(5)]
        c = Tracer("service", seed=1)
        assert a.next_id() != c.next_id()
        assert Tracer("router", seed=0).next_id() != Tracer("shard-0", seed=0).next_id()

    def test_adopts_propagated_id(self):
        tracer = Tracer("shard-1")
        trace = tracer.start("cafecafecafecafe")
        assert trace.trace_id == "cafecafecafecafe"
        assert trace.component == "shard-1"


class TestTrace:
    def test_nested_spans_parent_correctly(self):
        trace = Tracer("service").start()
        with trace.span(SPAN_PARSE):
            with trace.span(SPAN_CACHE_LOOKUP, hit=False):
                pass
        trace.finish()
        spans = {s.name: s for s in trace.spans}
        assert spans[SPAN_CACHE_LOOKUP].parent_id == spans[SPAN_PARSE].span_id
        assert spans[SPAN_PARSE].parent_id is None
        assert spans[SPAN_CACHE_LOOKUP].meta == {"hit": False}
        assert trace.duration_ms >= spans[SPAN_PARSE].duration_ms

    def test_record_span_accepts_cross_thread_intervals(self):
        trace = Tracer("service").start()
        trace.record_span(SPAN_QUEUE_WAIT, 1.0, 1.5)
        trace.record_span(SPAN_BATCH_COMPUTE, 1.5, 1.75, group_size=4)
        names = [s.name for s in trace.spans]
        assert names == [SPAN_QUEUE_WAIT, SPAN_BATCH_COMPUTE]
        assert trace.spans[0].duration_ms == pytest.approx(500.0)

    def test_unregistered_span_name_is_rejected(self):
        trace = Tracer("service").start()
        with pytest.raises(ValueError):
            trace.record_span("made_up_stage", 0.0, 1.0)

    def test_as_dict_shape(self):
        trace = Tracer("service").start()
        with trace.span(SPAN_PARSE):
            pass
        doc = trace.finish().as_dict()
        assert set(doc) == {
            "trace_id", "component", "started_at", "duration_ms", "spans",
        }
        assert set(doc["spans"][0]) == {
            "span_id", "name", "start_ms", "duration_ms", "parent_id", "meta",
        }


class TestTraceStore:
    def _trace(self, tracer, *, slow=False):
        trace = tracer.start()
        trace.finish()
        if slow:
            trace.duration_ms = 1e6
        return trace

    def test_ring_evicts_oldest(self):
        tracer = Tracer("service")
        store = TraceStore(capacity=4)
        traces = [self._trace(tracer) for _ in range(10)]
        for trace in traces:
            store.add(trace)
        assert len(store) == 4
        assert store.get(traces[0].trace_id) is None
        assert store.get(traces[-1].trace_id) is traces[-1]
        # newest first
        assert [s["trace_id"] for s in store.summaries()] == [
            t.trace_id for t in reversed(traces[-4:])
        ]

    def test_slow_log_survives_ring_eviction(self):
        tracer = Tracer("service")
        store = TraceStore(capacity=2, slow_ms=500.0, slow_capacity=3)
        slow = self._trace(tracer, slow=True)
        store.add(slow)
        for _ in range(5):
            store.add(self._trace(tracer))
        assert store.get(slow.trace_id) is None  # fell off the ring
        assert store.slow_total == 1
        assert [e["trace_id"] for e in store.slow_log()] == [slow.trace_id]

    def test_slow_log_is_bounded_but_total_keeps_counting(self):
        tracer = Tracer("service")
        store = TraceStore(capacity=64, slow_ms=500.0, slow_capacity=3)
        for _ in range(8):
            store.add(self._trace(tracer, slow=True))
        assert store.slow_total == 8
        assert len(store.slow_log()) == 3
        assert store.summaries(slow_ms=500.0) == store.summaries()[:64]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


# --------------------------------------------------------------------------- #
# service-level memory bounds (the unbounded-telemetry regression)
# --------------------------------------------------------------------------- #
class TestServiceTelemetryBounds:
    def test_sustained_traffic_holds_telemetry_memory_constant(self):
        service = SchedulerService(
            workers=2, batch_size=8, trace_capacity=16, trace_seed=1
        )
        try:
            payload = {
                "generate": {
                    "family": "uniform", "tasks": 4, "procs": 4, "seed": 5,
                },
                "algorithm": "mrt",
            }
            for _ in range(200):
                request = request_from_payload(payload)
                trace = service.tracer.start()
                service.submit(request, trace=trace).result(timeout=60)
                service.traces.add(trace.finish())
            metrics = service.metrics()
            # Latency telemetry is a fixed histogram, not a growing list...
            histogram = metrics["latency"]["histogram"]
            assert metrics["latency"]["count"] == 200
            assert len(histogram["counts"]) == len(BOUNDS_MS) + 1
            assert sum(histogram["counts"]) == 200
            # ...and the trace ring never outgrows its capacity.
            assert metrics["traces"]["stored"] == 16
            assert metrics["traces"]["capacity"] == 16
            assert len(service.traces) == 16
        finally:
            service.close()

    def test_tracing_disabled_records_nothing(self):
        service = SchedulerService(workers=2, tracing=False)
        try:
            request = request_from_payload(
                {
                    "generate": {
                        "family": "uniform", "tasks": 4, "procs": 4, "seed": 5,
                    },
                }
            )
            service.submit(request).result(timeout=60)
            metrics = service.metrics()
            assert metrics["traces"]["enabled"] is False
            assert metrics["traces"]["stored"] == 0
        finally:
            service.close()


# --------------------------------------------------------------------------- #
# prometheus exposition
# --------------------------------------------------------------------------- #
def parse_prometheus(text: str) -> dict[str, dict]:
    """Minimal 0.0.4 text-format parser: family -> {"type", "samples"}."""
    families: dict[str, dict] = {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            families[name] = {"type": kind, "samples": {}}
        elif line.startswith("# HELP "):
            assert line.split(" ", 3)[3], "HELP text must not be empty"
        else:
            sample, value = line.rsplit(" ", 1)
            float(value)  # must parse
            base = sample.split("{", 1)[0]
            family = base
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base[: -len(suffix)] in families:
                    family = base[: -len(suffix)]
            assert family in families, f"sample {sample!r} before TYPE"
            families[family]["samples"][sample] = float(value)
    return families


class TestPrometheusRendering:
    def test_service_exposition_parses_and_covers_registry(self):
        service = SchedulerService(workers=2)
        try:
            request = request_from_payload(
                {
                    "generate": {
                        "family": "uniform", "tasks": 4, "procs": 4, "seed": 2,
                    },
                }
            )
            service.submit(request).result(timeout=60)
            text = render_service_metrics(service.metrics())
        finally:
            service.close()
        families = parse_prometheus(text)
        assert set(families) <= METRIC_NAMES
        assert families["repro_requests_total"]["samples"][
            "repro_requests_total"
        ] == 1.0
        assert families["repro_request_latency_ms"]["type"] == "histogram"
        # Cumulative buckets: non-decreasing, +Inf equals _count.
        buckets = [
            (sample, value)
            for sample, value in families["repro_request_latency_ms"][
                "samples"
            ].items()
            if "_bucket" in sample
        ]
        values = [value for _, value in buckets]
        assert values == sorted(values)
        inf = families["repro_request_latency_ms"]["samples"][
            'repro_request_latency_ms_bucket{le="+Inf"}'
        ]
        count = families["repro_request_latency_ms"]["samples"][
            "repro_request_latency_ms_count"
        ]
        assert inf == count == 1.0

    def test_registry_types_are_valid(self):
        assert METRIC_NAMES == set(METRICS)
        for name, (kind, help_text) in METRICS.items():
            assert kind in ("counter", "gauge", "histogram"), name
            assert help_text


# --------------------------------------------------------------------------- #
# metrics block wiring
# --------------------------------------------------------------------------- #
class TestMetricsDocument:
    def test_latency_block_is_histogram_backed(self):
        service = SchedulerService(workers=2)
        try:
            metrics = service.metrics()
        finally:
            service.close()
        latency = metrics["latency"]
        assert {"count", "p50_ms", "p99_ms", "mean_ms", "histogram"} <= set(
            latency
        )
        assert json.dumps(latency)  # JSON-serialisable end to end
