"""Tests for the shelf data structure (repro.packing.shelves)."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleError
from repro.packing import Shelf


class TestShelf:
    def test_empty_shelf(self):
        shelf = Shelf(start=1.0, num_procs=8)
        assert shelf.height == 0.0
        assert shelf.end == 1.0
        assert shelf.free == 8
        assert len(shelf) == 0

    def test_place_left_to_right(self):
        shelf = Shelf(start=0.0, num_procs=8)
        p1 = shelf.place(0, 3, 2.0)
        p2 = shelf.place(1, 2, 1.0)
        assert p1.first_proc == 0
        assert p2.first_proc == 3
        assert shelf.used == 5
        assert shelf.free == 3
        assert shelf.height == 2.0
        assert shelf.end == 2.0

    def test_overflow_raises(self):
        shelf = Shelf(start=0.0, num_procs=4)
        shelf.place(0, 3, 1.0)
        with pytest.raises(InfeasibleError):
            shelf.place(1, 2, 1.0)

    def test_height_limit(self):
        shelf = Shelf(start=0.0, num_procs=4, limit=1.5)
        assert shelf.fits(2, 1.5)
        assert not shelf.fits(2, 1.6)
        with pytest.raises(InfeasibleError):
            shelf.place(0, 2, 2.0)

    def test_fits_width(self):
        shelf = Shelf(start=0.0, num_procs=4)
        shelf.place(0, 4, 1.0)
        assert not shelf.fits(1, 0.5)
