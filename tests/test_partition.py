"""Tests for the T1/T2/T3 canonical partition (repro.core.partition)."""

from __future__ import annotations

import math

import pytest

from repro import Instance, MalleableTask, mixed_instance
from repro.core.partition import (
    LAMBDA_STAR,
    build_partition,
    inefficiency_factor,
)
from repro.exceptions import ModelError
from repro.lower_bounds import canonical_area_lower_bound


class TestLambdaStar:
    def test_value(self):
        assert LAMBDA_STAR == pytest.approx(math.sqrt(3) - 1)
        assert 0.5 < LAMBDA_STAR <= 1.0


class TestInefficiencyFactor:
    def test_at_least_one_for_monotonic_tasks(self, medium_instance):
        d = medium_instance.upper_bound() / 4
        for task in medium_instance.tasks:
            gamma = task.canonical_procs(d)
            if gamma is None:
                continue
            for q in range(gamma, medium_instance.num_procs + 1):
                assert (
                    inefficiency_factor(task.work(q), task.work(gamma)) >= 1.0 - 1e-9
                )

    def test_invalid_canonical_work(self):
        with pytest.raises(ModelError):
            inefficiency_factor(1.0, 0.0)


class TestBuildPartition:
    def test_none_on_infeasible_guess(self, medium_instance):
        assert build_partition(medium_instance, 1e-9) is None

    def test_invalid_lambda(self, medium_instance):
        with pytest.raises(ModelError):
            build_partition(medium_instance, 1.0, lam=0.3)

    def test_partition_covers_all_tasks_exactly_once(self, medium_instance):
        d = canonical_area_lower_bound(medium_instance) * 1.1
        part = build_partition(medium_instance, d)
        assert part is not None
        all_indices = sorted(part.t1 + part.t2 + part.t3)
        assert all_indices == list(range(medium_instance.num_tasks))

    def test_classification_thresholds(self, medium_instance):
        d = canonical_area_lower_bound(medium_instance) * 1.1
        part = build_partition(medium_instance, d)
        assert part is not None
        for i in part.t1:
            assert part.alloc.times[i] > LAMBDA_STAR * d - 1e-9
        for i in part.t2:
            assert d / 2 - 1e-9 < part.alloc.times[i] <= LAMBDA_STAR * d + 1e-9
        for i in part.t3:
            assert part.alloc.times[i] <= d / 2 + 1e-9

    def test_t3_tasks_are_sequential(self, medium_instance):
        """Property 1 corollary: canonical time <= d/2 implies gamma = 1."""
        d = canonical_area_lower_bound(medium_instance) * 1.2
        part = build_partition(medium_instance, d)
        assert part is not None
        for i in part.t3:
            assert part.alloc.procs[i] == 1

    def test_q_values_consistent(self, medium_instance):
        d = canonical_area_lower_bound(medium_instance) * 1.1
        part = build_partition(medium_instance, d)
        assert part is not None
        assert part.q1 == sum(part.alloc.procs[i] for i in part.t1)
        assert part.q2 == sum(part.alloc.procs[i] for i in part.t2)
        if part.t3:
            assert part.q3 == part.small_packing.num_bins
            assert part.q3 >= 1
        else:
            assert part.q3 == 0
        assert part.free_shelf2 == medium_instance.num_procs - part.q2 - part.q3

    def test_shelf2_procs_exceed_gamma_for_t1(self, medium_instance):
        """T1 tasks need strictly more processors to enter the second shelf."""
        d = canonical_area_lower_bound(medium_instance) * 1.05
        part = build_partition(medium_instance, d)
        assert part is not None
        for i in part.t1:
            d_i = part.shelf2_procs[i]
            if d_i is not None:
                assert d_i >= part.alloc.procs[i]

    def test_canonical_areas_sum_to_total(self, medium_instance):
        d = canonical_area_lower_bound(medium_instance) * 1.1
        part = build_partition(medium_instance, d)
        assert part is not None
        total = part.area_t1 + part.area_t2 + part.area_t3
        assert total == pytest.approx(part.alloc.total_work)

    def test_required_gamma(self):
        """required_gamma is the overflow of the first shelf."""
        # three tall tasks of canonical width 2 on m=4: q1=6, required = 2
        tasks = [MalleableTask(f"t{i}", [1.8, 0.9, 0.7, 0.6]) for i in range(3)]
        inst = Instance(tasks, 4)
        part = build_partition(inst, 1.0)
        assert part is not None
        assert part.q1 == 6
        assert part.required_gamma() == 2

    def test_knapsack_items_exclude_pinned(self, medium_instance):
        d = canonical_area_lower_bound(medium_instance) * 1.05
        part = build_partition(medium_instance, d)
        assert part is not None
        item_keys = {key for key, _, _ in part.knapsack_items()}
        for i in part.pinned_to_shelf1():
            assert i not in item_keys
        for key, weight, profit in part.knapsack_items():
            assert weight >= 1 and profit >= 1
