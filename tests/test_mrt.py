"""Tests for the complete √3 scheduler (repro.core.mrt)."""

from __future__ import annotations

import math

import pytest

from repro import (
    MRTScheduler,
    best_lower_bound,
    heavy_tailed_instance,
    mixed_instance,
    rigid_heavy_instance,
    uniform_instance,
)
from repro.core.mrt import MRTDual
from repro.baselines.optimal import optimal_schedule
from repro.lower_bounds import canonical_area_lower_bound
from repro.workloads.adversarial import (
    fragmentation_instance,
    lpt_worst_case_instance,
    shelf_overflow_instance,
)

SQRT3 = math.sqrt(3.0)


class TestMRTDual:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MRTDual(lam=0.3)
        with pytest.raises(ValueError):
            MRTDual(mu=1.2)

    def test_rho_is_sqrt3_for_defaults(self):
        assert MRTDual().rho == pytest.approx(SQRT3)

    def test_rejects_impossible_guess(self, medium_instance):
        dual = MRTDual()
        assert dual.run(medium_instance, 1e-9) is None
        assert dual.last_branch is None

    def test_accepts_generous_guess(self, medium_instance):
        dual = MRTDual()
        schedule = dual.run(medium_instance, medium_instance.upper_bound())
        assert schedule is not None
        assert dual.last_branch == schedule.algorithm

    @pytest.mark.parametrize("seed", range(4))
    def test_accepted_schedule_within_sqrt3_of_guess(self, seed):
        inst = mixed_instance(18, 16, seed=seed)
        dual = MRTDual()
        lb = canonical_area_lower_bound(inst)
        for factor in (1.0, 1.1, 1.4, 2.0, 4.0):
            schedule = dual.run(inst, lb * factor)
            if schedule is not None:
                schedule.validate()
                assert schedule.makespan() <= SQRT3 * lb * factor * (1 + 1e-9) + 1e-9

    def test_mu_area_recorded(self, medium_instance):
        dual = MRTDual()
        dual.run(medium_instance, medium_instance.upper_bound())
        assert dual.last_mu_area is not None

    @pytest.mark.parametrize("method", ["exact", "dual", "fptas"])
    def test_knapsack_method_variants_agree_on_acceptance(self, method):
        inst = shelf_overflow_instance(16, seed=5)
        lb = canonical_area_lower_bound(inst)
        baseline = MRTDual().run(inst, lb * 1.3) is not None
        variant = MRTDual(knapsack_method=method).run(inst, lb * 1.3) is not None
        # the FPTAS may be slightly weaker but never stronger than exact on
        # acceptance; all three must accept generous guesses
        if baseline:
            assert MRTDual(knapsack_method=method).run(inst, lb * 2.5) is not None
        assert isinstance(variant, bool)


class TestMRTScheduler:
    WORKLOADS = [
        ("uniform", lambda seed: uniform_instance(20, 16, seed=seed)),
        ("mixed", lambda seed: mixed_instance(20, 16, seed=seed)),
        ("heavy", lambda seed: heavy_tailed_instance(20, 16, seed=seed)),
        ("rigid", lambda seed: rigid_heavy_instance(20, 16, seed=seed)),
    ]

    @pytest.mark.parametrize("name,factory", WORKLOADS, ids=[w[0] for w in WORKLOADS])
    @pytest.mark.parametrize("seed", range(3))
    def test_ratio_to_lower_bound_below_sqrt3(self, name, factory, seed):
        """The headline claim: makespan within √3 of the (lower bound on the) optimum."""
        inst = factory(seed)
        scheduler = MRTScheduler(eps=1e-3)
        schedule = scheduler.schedule(inst)
        schedule.validate()
        lb = best_lower_bound(inst)
        assert schedule.makespan() <= SQRT3 * lb * (1 + 5e-3)

    @pytest.mark.parametrize("seed", range(4))
    def test_within_sqrt3_of_exact_optimum_small(self, seed):
        inst = mixed_instance(5, 4, seed=seed)
        mrt = MRTScheduler().schedule(inst)
        opt = optimal_schedule(inst)
        assert mrt.makespan() <= SQRT3 * opt.makespan() * (1 + 1e-6)

    def test_result_metadata(self, medium_instance):
        scheduler = MRTScheduler()
        schedule = scheduler.schedule(medium_instance)
        result = scheduler.last_result
        assert result is not None
        assert result.schedule is schedule
        assert result.lower_bound > 0
        assert result.ratio_to_lower_bound >= 1.0 - 1e-9
        assert result.branch
        assert result.search.iterations > 0

    def test_adversarial_instances(self):
        for inst in (
            fragmentation_instance(16),
            lpt_worst_case_instance(8),
            shelf_overflow_instance(16, seed=2),
        ):
            scheduler = MRTScheduler()
            schedule = scheduler.schedule(inst)
            schedule.validate()
            assert schedule.makespan() <= SQRT3 * best_lower_bound(inst) * (1 + 5e-3)

    def test_single_task_instance(self):
        from repro import Instance, MalleableTask

        inst = Instance([MalleableTask.constant_work("only", 10.0, 8)], 8)
        schedule = MRTScheduler().schedule(inst)
        # a single perfectly parallel task should be run close to full width
        assert schedule.makespan() <= 10.0 / 8 * SQRT3 + 1e-9

    def test_small_machine_uses_list_guarantee(self):
        """On m <= 6 the malleable list bound is below √3 already."""
        inst = mixed_instance(10, 4, seed=1)
        scheduler = MRTScheduler()
        schedule = scheduler.schedule(inst)
        lb = best_lower_bound(inst)
        assert schedule.makespan() <= SQRT3 * lb * (1 + 5e-3)

    def test_deterministic_given_seeded_instance(self):
        inst = mixed_instance(15, 8, seed=9)
        a = MRTScheduler().schedule(inst).makespan()
        b = MRTScheduler().schedule(inst).makespan()
        assert a == pytest.approx(b)
