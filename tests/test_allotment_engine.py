"""Tests for the vectorized allotment engine (repro.core.allotment_engine).

The engine must reproduce the scalar reference path —
``MalleableTask.canonical_procs`` / ``canonical_time`` / ``canonical_work``
and the hand-rolled μ-area loop — bit-for-bit across random instances and
deadlines, including non-monotonic profiles and infeasible deadlines, while
memoizing repeated deadlines.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.experiments import run_comparison
from repro.baselines.sequential import SequentialLPTScheduler
from repro.core.allotment_engine import AllotmentEngine, quantize_deadline
from repro.core.malleable_list import MalleableListScheduler
from repro.core.partition import LAMBDA_STAR, build_partition
from repro.core.properties import canonical_allotment
from repro.model.instance import Instance
from repro.model.task import MalleableTask
from repro.workloads.generators import make_workload


# --------------------------------------------------------------------------- #
# scalar reference implementations (the pre-engine code paths)
# --------------------------------------------------------------------------- #
def scalar_gamma(instance: Instance, deadline: float) -> list[int | None]:
    return [t.canonical_procs(deadline) for t in instance.tasks]


def scalar_canonical_work(instance: Instance, deadline: float) -> float | None:
    total = 0.0
    for task in instance.tasks:
        p = task.canonical_procs(deadline)
        if p is None:
            return None
        total += task.work(p)
    return total


def scalar_mu_area(instance: Instance, deadline: float) -> float | None:
    gammas = []
    for task in instance.tasks:
        p = task.canonical_procs(deadline)
        if p is None:
            return None
        gammas.append((task.time(p), p, task.work(p)))
    gammas.sort(key=lambda item: -item[0])
    area = 0.0
    used = 0
    for time, procs, work in gammas:
        if used + procs <= instance.num_procs:
            area += work
            used += procs
            if used == instance.num_procs:
                break
        else:
            area += (instance.num_procs - used) * time
            break
    return area


def random_instances(n_instances: int = 12) -> list[Instance]:
    rng = np.random.default_rng(2024)
    out = []
    for k in range(n_instances):
        m = int(rng.integers(2, 24))
        n = int(rng.integers(1, 30))
        family = ["uniform", "mixed", "heavy-tailed", "rigid-heavy"][k % 4]
        out.append(make_workload(family, n, m, seed=rng))
    return out


def interesting_deadlines(instance: Instance, rng) -> list[float]:
    """Deadlines straddling every regime: infeasible, boundary, feasible."""
    tmin = min(t.min_time() for t in instance.tasks)
    tmax = instance.max_sequential_time()
    exact = [float(t.time(p)) for t in instance.tasks[:4] for p in (1, instance.num_procs)]
    return (
        [-1.0, 0.0, tmin * 0.5, tmin, tmax, tmax * 2.0]
        + exact
        + list(rng.uniform(tmin * 0.25, tmax * 1.5, size=8))
    )


class TestGammaMatchesScalar:
    @pytest.mark.parametrize("idx", range(12))
    def test_random_instances(self, idx):
        instance = random_instances()[idx]
        rng = np.random.default_rng(500 + idx)
        for d in interesting_deadlines(instance, rng):
            expected = scalar_gamma(instance, d)
            assert instance.canonical_procs(d) == expected
            alloc = canonical_allotment(instance, d)
            if any(p is None for p in expected):
                assert alloc is None
                assert instance.canonical_work(d) is None
                assert instance.mu_area(d) is None
            else:
                assert alloc is not None
                assert alloc.procs.tolist() == expected
                for i, task in enumerate(instance.tasks):
                    assert alloc.times[i] == task.time(expected[i])
                    assert alloc.works[i] == task.work(expected[i])
                work = instance.canonical_work(d)
                ref = scalar_canonical_work(instance, d)
                assert work == pytest.approx(ref, rel=1e-12, abs=1e-12)
                mu = instance.mu_area(d)
                mu_ref = scalar_mu_area(instance, d)
                assert mu == pytest.approx(mu_ref, rel=1e-12, abs=1e-12)

    def test_non_monotonic_profiles(self):
        """γ must be the *first* fitting p, like the scalar linear scan."""
        tasks = [
            MalleableTask("a", [5.0, 7.0, 2.0, 3.0], require_monotonic=False),
            MalleableTask("b", [4.0, 1.0, 6.0, 0.5], require_monotonic=False),
            MalleableTask("c", [9.0, 8.0, 8.5, 8.4], require_monotonic=False),
        ]
        instance = Instance(tasks, 4)
        for d in [-1.0, 0.0, 0.4, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 8.4, 8.5, 9.0, 20.0]:
            assert instance.canonical_procs(d) == scalar_gamma(instance, d)

    def test_infeasible_deadline_returns_none(self):
        instance = Instance([MalleableTask.rigid("r", 10.0, 4)], 4)
        assert canonical_allotment(instance, 5.0) is None
        assert instance.canonical_work(5.0) is None
        assert instance.mu_area(5.0) is None
        profile = instance.engine.gamma(5.0)
        assert not profile.feasible
        assert profile.procs_list() == [None]

    def test_partial_feasibility_profile(self):
        """The per-task view keeps reachable tasks even when others fail."""
        tasks = [MalleableTask.rigid("slow", 10.0, 4), MalleableTask.constant_work("fast", 4.0, 4)]
        instance = Instance(tasks, 4)
        profile = instance.engine.gamma(2.0)
        assert profile.procs_list() == [None, 2]
        assert not profile.feasible
        assert profile.mask.tolist() == [False, True]


class TestMemoization:
    def test_repeated_deadlines_hit_the_cache(self):
        instance = make_workload("mixed", 20, 8, seed=7)
        engine = instance.engine
        engine.clear_cache()
        engine.gamma(3.0)
        engine.gamma(3.0)
        engine.gamma(3.0 + 1e-16)  # quantizes to the same key
        info = engine.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2

    def test_distinct_guesses_are_not_conflated(self):
        # The finest search tolerance is 1e-9 relative; keys keep 12
        # significant digits, so neighbouring dichotomic guesses stay apart.
        assert quantize_deadline(1.0) != quantize_deadline(1.0 + 1e-9)
        assert quantize_deadline(1e6) != quantize_deadline(1e6 * (1 + 1e-9))
        assert quantize_deadline(0.0) == 0.0

    def test_lower_bound_searches_share_guesses(self):
        """canonical_area_lower_bound is recomputed by dual_search,
        MRTScheduler and best_lower_bound — the repeats are pure hits."""
        from repro.lower_bounds import canonical_area_lower_bound

        instance = make_workload("uniform", 15, 8, seed=3)
        first = canonical_area_lower_bound(instance)
        misses_after_first = instance.engine.cache_info()["misses"]
        second = canonical_area_lower_bound(instance)
        info = instance.engine.cache_info()
        assert second == first
        assert info["misses"] == misses_after_first  # no new vectorized passes
        assert info["hits"] >= misses_after_first

    def test_mrt_scheduler_run_populates_cache(self):
        """One MRT guess touches γ(d) several times (Property 2, μ-area,
        partition) plus the repeated lower-bound searches — all cache hits."""
        from repro.core.mrt import MRTScheduler

        instance = make_workload("uniform", 12, 8, seed=3)
        MRTScheduler().schedule(instance)
        info = instance.engine.cache_info()
        assert info["hits"] > info["misses"]

    def test_lru_eviction_bounds_memory(self):
        instance = make_workload("uniform", 5, 4, seed=1)
        from repro.core.allotment_engine import AllotmentEngine

        engine = AllotmentEngine(instance.times_matrix, cache_size=4)
        for d in np.linspace(1.0, 2.0, 20):
            engine.gamma(float(d))
        assert engine.cache_info()["size"] <= 4


class TestPartitionSplit:
    @pytest.mark.parametrize("seed", range(5))
    def test_build_partition_matches_scalar_reference(self, seed):
        instance = make_workload("mixed", 18, 10, seed=seed)
        rng = np.random.default_rng(900 + seed)
        lb = instance.lower_bound()
        for d in rng.uniform(lb * 0.8, lb * 3.0, size=6):
            part = build_partition(instance, float(d), LAMBDA_STAR)
            alloc = canonical_allotment(instance, float(d))
            if alloc is None:
                assert part is None
                continue
            assert part is not None
            shelf2_deadline = LAMBDA_STAR * float(d)
            t1, t2, t3 = [], [], []
            for i, task in enumerate(instance.tasks):
                t_canon = float(alloc.times[i])
                if t_canon > shelf2_deadline + 1e-9:
                    t1.append(i)
                elif t_canon > float(d) / 2.0 + 1e-9:
                    t2.append(i)
                else:
                    t3.append(i)
            assert part.t1 == t1
            assert part.t2 == t2
            assert part.t3 == t3
            for i in t1:
                assert part.shelf2_procs[i] == instance.tasks[i].canonical_procs(
                    shelf2_deadline
                )
            assert part.q1 == sum(int(alloc.procs[i]) for i in t1)
            assert part.q2 == sum(int(alloc.procs[i]) for i in t2)


class TestEngineStandalone:
    def test_rejects_bad_matrices(self):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            AllotmentEngine(np.zeros((0, 0)))
        with pytest.raises(ModelError):
            AllotmentEngine(np.ones(4))
        with pytest.raises(ModelError):
            AllotmentEngine(np.ones((2, 3)), np.ones((2, 4)))

    def test_derives_works_matrix(self):
        times = np.array([[4.0, 2.5, 2.0]])
        engine = AllotmentEngine(times)
        assert engine.works_matrix.tolist() == [[4.0, 5.0, 6.0]]
        assert engine.num_tasks == 1
        assert engine.num_procs == 3

    def test_property2_helper(self):
        instance = Instance([MalleableTask.constant_work("w", 8.0, 2)], 2)
        engine = instance.engine
        # d = 4: gamma = 2, work 8 <= m*d = 8 -> holds.
        assert engine.property2_holds(4.0)
        # d = 3.9: infeasible (t(2) = 4 > 3.9) -> fails.
        assert not engine.property2_holds(3.9)


class TestInstancePickling:
    def test_engine_cache_is_dropped_on_pickle(self):
        import pickle

        instance = make_workload("uniform", 10, 6, seed=5)
        instance.engine.gamma(2.0)
        clone = pickle.loads(pickle.dumps(instance))
        assert clone.name == instance.name
        assert clone.num_procs == instance.num_procs
        assert clone.engine.cache_info()["size"] == 0
        assert clone.canonical_procs(2.0) == instance.canonical_procs(2.0)


class TestParallelDeterminism:
    def test_run_comparison_workers_matches_serial(self):
        instances = [
            make_workload("mixed", 10, 6, seed=11),
            make_workload("uniform", 8, 4, seed=12),
        ]
        schedulers = lambda: [MalleableListScheduler(), SequentialLPTScheduler()]
        serial = run_comparison(instances, schedulers(), family="det")
        parallel = run_comparison(instances, schedulers(), family="det", workers=4)
        assert len(serial.records) == len(parallel.records)
        for a, b in zip(serial.records, parallel.records):
            # runtime_seconds is a wall-clock measurement; everything else
            # must be identical, in identical order.
            assert dataclasses.replace(a, runtime_seconds=0.0) == dataclasses.replace(
                b, runtime_seconds=0.0
            )
