"""Tests for the level-oriented strip packers (repro.baselines.strip_packing)."""

from __future__ import annotations

import pytest

from repro import Allotment, Instance, MalleableTask, mixed_instance
from repro.baselines.strip_packing import ffdh_schedule, nfdh_schedule, pack_with


def random_rigid_allotment(seed: int, n: int = 20, m: int = 12) -> Allotment:
    import numpy as np

    rng = np.random.default_rng(seed)
    inst = mixed_instance(n, m, seed=seed)
    procs = rng.integers(1, m + 1, size=n)
    return Allotment(inst, procs)


@pytest.mark.parametrize("packer", [nfdh_schedule, ffdh_schedule], ids=["nfdh", "ffdh"])
class TestShelfPackers:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_complete_schedule(self, packer, seed):
        allotment = random_rigid_allotment(seed)
        schedule = packer(allotment)
        schedule.validate()
        assert schedule.is_complete()

    @pytest.mark.parametrize("seed", range(4))
    def test_respects_rigid_allotment(self, packer, seed):
        allotment = random_rigid_allotment(seed)
        schedule = packer(allotment)
        for entry in schedule.entries:
            assert entry.num_procs == allotment[entry.task_index]

    @pytest.mark.parametrize("seed", range(4))
    def test_absolute_factor_three_on_bounded_heights(self, packer, seed):
        """Shelf packings stay within 3× the rigid lower bound."""
        allotment = random_rigid_allotment(seed)
        schedule = packer(allotment)
        assert schedule.makespan() <= 3.0 * allotment.lower_bound() + 1e-9

    def test_single_task(self, packer):
        inst = Instance([MalleableTask.rigid("t", 2.0, 4)], 4)
        allotment = Allotment(inst, [3])
        schedule = packer(allotment)
        assert schedule.makespan() == pytest.approx(2.0)
        assert schedule.entry_for(0).start == 0.0

    def test_shelves_do_not_overlap_in_time(self, packer):
        allotment = random_rigid_allotment(7)
        schedule = packer(allotment)
        # group tasks by start: each group's height must not overlap the next start
        starts = sorted({round(e.start, 9) for e in schedule.entries})
        for s0, s1 in zip(starts, starts[1:]):
            tallest = max(e.duration for e in schedule.entries if abs(e.start - s0) < 1e-9)
            assert s0 + tallest <= s1 + 1e-9


class TestFFDHvsNFDH:
    @pytest.mark.parametrize("seed", range(5))
    def test_ffdh_never_worse_than_nfdh(self, seed):
        allotment = random_rigid_allotment(seed, n=25)
        assert (
            ffdh_schedule(allotment).makespan()
            <= nfdh_schedule(allotment).makespan() + 1e-9
        )


class TestPackWith:
    def test_dispatch(self):
        allotment = random_rigid_allotment(1)
        for method in ("nfdh", "ffdh", "list"):
            schedule = pack_with(allotment, method)
            schedule.validate()

    def test_unknown_method(self):
        allotment = random_rigid_allotment(1)
        with pytest.raises(ValueError):
            pack_with(allotment, "steinberg")
