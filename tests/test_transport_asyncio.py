"""Asyncio-transport-specific tests (repro.service.http.aio).

The shared app-layer behaviour is covered by the transport matrix in
test_service.py / test_cluster.py; this file exercises what only the
asyncio frontend owns: the hand-rolled HTTP/1.1 parser (malformed input,
header limits, chunked rejection), keep-alive and pipelining on one
connection, slow clients dribbling bytes, oversized-body rejection before
the body arrives, high-concurrency connection handling and the /shutdown
lifecycle.  Everything talks raw sockets — the stdlib client would paper
over exactly the framing behaviour under test.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.service import start_background_server
from repro.service.http.app import MAX_BODY_BYTES
from repro.service.loadtest import run_soak

SCHEDULE_BODY = json.dumps(
    {
        "algorithm": "mrt",
        "generate": {"family": "uniform", "tasks": 4, "procs": 2, "seed": 0},
    }
).encode()


def request_bytes(method: str, target: str, body: bytes = b"", extra: str = "") -> bytes:
    head = f"{method} {target} HTTP/1.1\r\nHost: t\r\n{extra}"
    if body or method == "POST":
        head += f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
    return head.encode() + b"\r\n" + body


def read_response(rfile) -> tuple[int, dict[str, str], bytes]:
    status_line = rfile.readline()
    assert status_line, "server closed the connection before responding"
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = rfile.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = rfile.read(int(headers.get("content-length", 0)))
    return status, headers, body


@pytest.fixture(scope="class")
def aserver():
    server, _ = start_background_server(allow_shutdown=False, transport="asyncio")
    yield server
    server.close()


@pytest.fixture
def sock(aserver):
    conn = socket.create_connection(aserver.server_address[:2], timeout=30)
    yield conn
    conn.close()


class TestAsyncioTransport:
    def test_keep_alive_hundred_requests_on_one_connection(self, sock):
        rfile = sock.makefile("rb")
        for _ in range(100):
            sock.sendall(request_bytes("GET", "/healthz"))
            status, headers, body = read_response(rfile)
            assert status == 200
            assert headers.get("connection") != "close"
            assert json.loads(body)["status"] == "ok"

    def test_pipelined_requests_answered_in_order(self, sock):
        # Three requests in one TCP segment: the per-connection loop must
        # answer them sequentially, never interleaving responses.
        sock.sendall(
            request_bytes("GET", "/healthz")
            + request_bytes("POST", "/schedule", SCHEDULE_BODY)
            + request_bytes("GET", "/nope?x=1")
        )
        rfile = sock.makefile("rb")
        status, _, body = read_response(rfile)
        assert status == 200 and json.loads(body)["status"] == "ok"
        status, _, body = read_response(rfile)
        assert status == 200 and "result" in json.loads(body)
        status, _, body = read_response(rfile)
        assert status == 404
        assert json.loads(body)["error"] == "unknown path '/nope?x=1'"

    def test_leading_blank_lines_before_request_are_skipped(self, sock):
        # RFC 9112 §2.2: a server SHOULD ignore CRLFs ahead of the
        # request-line (trailing bytes of a sloppy previous request).
        sock.sendall(b"\r\n\r\n" + request_bytes("GET", "/healthz"))
        status, _, _ = read_response(sock.makefile("rb"))
        assert status == 200

    def test_malformed_request_line_is_400_and_closes(self, sock):
        sock.sendall(b"GARBAGE\r\n\r\n")
        rfile = sock.makefile("rb")
        status, headers, body = read_response(rfile)
        assert status == 400
        assert headers["connection"] == "close"
        assert "error" in json.loads(body)
        assert rfile.read() == b""  # server hung up

    def test_malformed_header_line_is_400(self, sock):
        sock.sendall(b"GET /healthz HTTP/1.1\r\nBad Header: x\r\n\r\n")
        status, _, body = read_response(sock.makefile("rb"))
        assert status == 400
        assert "malformed header line" in json.loads(body)["error"]

    def test_bad_content_length_is_400(self, sock):
        sock.sendall(b"POST /schedule HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        status, _, body = read_response(sock.makefile("rb"))
        assert status == 400
        assert "Content-Length" in json.loads(body)["error"]

    def test_chunked_transfer_encoding_is_400(self, sock):
        sock.sendall(
            b"POST /schedule HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        )
        status, _, body = read_response(sock.makefile("rb"))
        assert status == 400
        assert "chunked" in json.loads(body)["error"]

    def test_header_flood_is_400(self, sock):
        flood = "".join(f"X-H{i}: v\r\n" for i in range(300))
        sock.sendall(f"GET /healthz HTTP/1.1\r\n{flood}\r\n".encode())
        status, _, body = read_response(sock.makefile("rb"))
        assert status == 400
        assert "header lines" in json.loads(body)["error"]

    def test_oversized_body_rejected_before_reading_it(self, sock):
        # Only the headers are sent: the 400 must arrive without the server
        # waiting for (or reading) the advertised multi-megabyte body.
        sock.sendall(
            b"POST /schedule HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        status, headers, body = read_response(sock.makefile("rb"))
        assert status == 400
        assert headers["connection"] == "close"
        assert json.loads(body)["error"] == (
            f"request body larger than {MAX_BODY_BYTES} bytes"
        )

    def test_slow_client_dribbling_bytes_still_served(self, sock):
        # A request trickled in 8-byte chunks must parse identically:
        # readline/readexactly block per fragment, nothing times out or
        # misframes.
        raw = request_bytes("POST", "/schedule", SCHEDULE_BODY)
        for i in range(0, len(raw), 8):
            sock.sendall(raw[i : i + 8])
            time.sleep(0.002)
        status, _, body = read_response(sock.makefile("rb"))
        assert status == 200
        assert "result" in json.loads(body)

    def test_slow_consumer_of_replay_stream_never_blocks_the_loop(self, aserver):
        # A client that dribble-reads a chunked /replay stream through a
        # tiny receive buffer makes the transport's write buffer fill, so
        # writer.drain() must suspend just this connection's coroutine —
        # the event loop has to keep answering /healthz the whole time.
        # Reading to the end then proves the backpressure lost no bytes:
        # the stream terminates cleanly and the frames reassemble into the
        # final document's own epochs list.
        import http.client

        body = json.dumps(
            {
                "generate": {
                    "pattern": "poisson",
                    "family": "mixed",
                    "tasks": 48,
                    "procs": 8,
                    "seed": 3,
                },
                "kernel": "barrier",
            }
        ).encode()
        host, port = aserver.server_address[:2]
        conn = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        conn.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        conn.settimeout(60)
        conn.connect((host, port))
        try:
            conn.sendall(
                b"POST /replay HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            raw = b""
            probes = 0
            while True:
                data = conn.recv(512)  # dribble: tiny reads, server-side backpressure
                if not data:
                    break
                raw += data
                if raw.endswith(b"0\r\n\r\n"):
                    break
                if len(raw) % 8192 < 512:  # probe the loop every ~8 KiB
                    time.sleep(0.005)
                    probe = http.client.HTTPConnection(host, port, timeout=10)
                    probe.request("GET", "/healthz")
                    assert probe.getresponse().status == 200, (
                        "event loop starved while a slow consumer dribbled"
                    )
                    probe.close()
                    probes += 1
        finally:
            conn.close()
        assert probes > 0, "stream too small to exercise backpressure"
        head, _, chunked = raw.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding: chunked" in head
        frames = []
        while chunked:
            size_line, _, chunked = chunked.partition(b"\r\n")
            size = int(size_line, 16)
            if size == 0:
                break
            frames.append(chunked[:size])
            chunked = chunked[size + 2 :]
        else:
            pytest.fail("stream did not terminate with the zero chunk")
        documents = [json.loads(frame) for frame in frames]
        final = documents[-1]
        assert "result" in final
        assert [doc["epoch"] for doc in documents[:-1]] == final["result"]["epochs"]

    def test_concurrent_connection_soak(self, aserver):
        # Warm the one payload, then hold 64 concurrent keep-alive
        # connections firing it; every exchange must complete cleanly.
        import http.client

        host, port = aserver.server_address[:2]
        conn = http.client.HTTPConnection(host, port)
        conn.request(
            "POST",
            "/schedule",
            body=SCHEDULE_BODY,
            headers={"Content-Type": "application/json"},
        )
        assert conn.getresponse().read()
        conn.close()
        report = run_soak(
            aserver.url,
            [SCHEDULE_BODY],
            connections=64,
            requests_per_connection=5,
        )
        assert report["errors"] == 0
        assert report["ok"] + report["rejected"] == 64 * 5
        assert report["ok"] > 0

    def test_shutdown_endpoint_stops_the_event_loop(self):
        server, thread = start_background_server(
            allow_shutdown=True, transport="asyncio"
        )
        try:
            with socket.create_connection(
                server.server_address[:2], timeout=30
            ) as conn:
                conn.sendall(request_bytes("POST", "/shutdown", b"{}"))
                status, _, body = read_response(conn.makefile("rb"))
            assert status == 200
            assert json.loads(body) == {"status": "shutting down"}
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            server.close()
