"""Tests for the knapsack solvers (repro.core.knapsack)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.knapsack import (
    KnapsackItem,
    knapsack_fptas,
    knapsack_max_profit,
    knapsack_min_weight,
)
from repro.exceptions import ModelError


def brute_force_max(items, capacity):
    best = 0
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            w = sum(i.weight for i in combo)
            p = sum(i.profit for i in combo)
            if w <= capacity:
                best = max(best, p)
    return best


def brute_force_min_weight(items, target):
    best = None
    for r in range(len(items) + 1):
        for combo in itertools.combinations(items, r):
            w = sum(i.weight for i in combo)
            p = sum(i.profit for i in combo)
            if p >= target and (best is None or w < best):
                best = w
    return best


def random_items(rng, n, max_w=12, max_p=15):
    return [
        KnapsackItem(key=i, weight=int(rng.integers(1, max_w)), profit=int(rng.integers(0, max_p)))
        for i in range(n)
    ]


class TestExactKnapsack:
    def test_simple_case(self):
        items = [
            KnapsackItem(0, weight=3, profit=4),
            KnapsackItem(1, weight=4, profit=5),
            KnapsackItem(2, weight=2, profit=3),
        ]
        sol = knapsack_max_profit(items, 6)
        assert sol.profit == 8
        assert set(sol.keys) == {1, 2} or set(sol.keys) == {0, 2}

    def test_zero_capacity(self):
        items = [KnapsackItem(0, 1, 5)]
        assert knapsack_max_profit(items, 0).profit == 0

    def test_negative_capacity(self):
        assert knapsack_max_profit([KnapsackItem(0, 1, 1)], -3).profit == 0

    def test_empty_items(self):
        assert knapsack_max_profit([], 10).profit == 0

    def test_negative_values_rejected(self):
        with pytest.raises(ModelError):
            knapsack_max_profit([KnapsackItem(0, -1, 1)], 5)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        items = random_items(rng, 9)
        capacity = int(rng.integers(5, 40))
        sol = knapsack_max_profit(items, capacity)
        assert sol.profit == brute_force_max(items, capacity)
        assert sol.weight <= capacity
        # selected keys reproduce the reported totals
        selected = [i for i in items if i.key in set(sol.keys)]
        assert sum(i.profit for i in selected) == sol.profit
        assert sum(i.weight for i in selected) == sol.weight


class TestDualKnapsack:
    def test_zero_target(self):
        sol = knapsack_min_weight([KnapsackItem(0, 5, 5)], 0)
        assert sol is not None and sol.weight == 0

    def test_unreachable_target(self):
        assert knapsack_min_weight([KnapsackItem(0, 1, 2)], 5) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(100 + seed)
        items = random_items(rng, 8)
        total_profit = sum(i.profit for i in items)
        target = int(rng.integers(1, max(2, total_profit)))
        sol = knapsack_min_weight(items, target)
        expected = brute_force_min_weight(items, target)
        if expected is None:
            assert sol is None
        else:
            assert sol is not None
            assert sol.weight == expected
            assert sol.profit >= target


class TestFPTAS:
    def test_invalid_eps(self):
        with pytest.raises(ModelError):
            knapsack_fptas([KnapsackItem(0, 1, 1)], 5, eps=0.0)
        with pytest.raises(ModelError):
            knapsack_fptas([KnapsackItem(0, 1, 1)], 5, eps=1.0)

    def test_discards_oversized_items(self):
        items = [KnapsackItem(0, 100, 100), KnapsackItem(1, 1, 1)]
        sol = knapsack_fptas(items, 5, eps=0.2)
        assert sol.profit == 1

    def test_all_zero_profit(self):
        items = [KnapsackItem(0, 1, 0), KnapsackItem(1, 2, 0)]
        assert knapsack_fptas(items, 5, eps=0.5).profit == 0

    @pytest.mark.parametrize("eps", [0.1, 0.3, 0.5])
    @pytest.mark.parametrize("seed", range(4))
    def test_approximation_guarantee(self, eps, seed):
        rng = np.random.default_rng(200 + seed)
        items = random_items(rng, 10, max_w=8, max_p=50)
        capacity = int(rng.integers(5, 30))
        opt = brute_force_max(items, capacity)
        sol = knapsack_fptas(items, capacity, eps=eps)
        assert sol.weight <= capacity
        assert sol.profit >= (1 - eps) * opt - 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_tiny_eps_matches_exact_solver(self, seed):
        """With profits small enough that scaling is a no-op, the FPTAS is exact.

        Regression for the reconstruction rewrite (parent pointers instead
        of per-level list copies): the selected set must reproduce the
        reported totals and reach the exact optimum.
        """
        rng = np.random.default_rng(300 + seed)
        items = random_items(rng, 9, max_w=10, max_p=12)
        capacity = int(rng.integers(4, 35))
        exact = knapsack_max_profit(items, capacity)
        sol = knapsack_fptas(items, capacity, eps=1e-6)
        assert sol.profit == exact.profit
        assert sol.weight <= capacity
        selected = [i for i in items if i.key in set(sol.keys)]
        assert sum(i.profit for i in selected) == sol.profit
        assert sum(i.weight for i in selected) == sol.weight
