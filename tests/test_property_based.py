"""Property-based tests (Hypothesis) on the core invariants.

These tests exercise the model and the algorithms on randomly generated
monotonic profiles far away from the parametric workload families:

* monotonic-envelope repair always yields a valid monotonic task;
* canonical numbers of processors satisfy Properties 1 and 2;
* the contiguous list scheduler always produces valid schedules;
* every scheduler produces a valid complete schedule whose makespan lies
  between the lower bound and the sequential upper bound;
* the knapsack DP matches brute force on small inputs;
* the √3 guarantee holds against the lower bound on random instances.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Instance, MalleableTask, MRTScheduler, best_lower_bound
from repro.baselines.sequential import SequentialLPTScheduler
from repro.core.knapsack import KnapsackItem, knapsack_max_profit
from repro.core.list_scheduling import contiguous_list_schedule, sliding_window_max
from repro.core.malleable_list import MalleableListScheduler
from repro.core.properties import property1_holds, property2_bound_holds
from repro.model.allotment import Allotment

SQRT3 = math.sqrt(3.0)

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
positive_times = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)


@st.composite
def monotonic_tasks(draw, max_procs: int | None = None):
    """A random monotonic task (built through the envelope repair)."""
    raw = draw(positive_times)
    if max_procs is not None:
        raw = (raw * max_procs)[:max_procs]
        if len(raw) < max_procs:
            raw = raw + [raw[-1]] * (max_procs - len(raw))
    name = draw(st.text(min_size=1, max_size=8, alphabet="abcdefgh"))
    return MalleableTask.monotonic_envelope(name, raw)


@st.composite
def instances(draw, max_tasks: int = 6, max_procs: int = 8):
    m = draw(st.integers(min_value=1, max_value=max_procs))
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = [draw(monotonic_tasks(max_procs=m)) for _ in range(n)]
    named = [
        MalleableTask(f"T{i}", task.times, require_monotonic=False)
        for i, task in enumerate(tasks)
    ]
    return Instance(named, m)


# --------------------------------------------------------------------------- #
# model invariants
# --------------------------------------------------------------------------- #
@given(times=positive_times)
def test_monotonic_envelope_always_valid(times):
    task = MalleableTask.monotonic_envelope("t", times)
    assert task.is_monotonic
    # repaired times never exceed the running minimum of the originals from above
    assert task.time(1) == times[0]


@given(times=positive_times, deadline=st.floats(min_value=0.01, max_value=200.0))
def test_canonical_procs_is_minimal(times, deadline):
    task = MalleableTask.monotonic_envelope("t", times)
    gamma = task.canonical_procs(deadline)
    if gamma is None:
        assert task.min_time() > deadline
    else:
        assert task.time(gamma) <= deadline + 1e-9
        if gamma > 1:
            assert task.time(gamma - 1) > deadline
    assert property1_holds(task, deadline)


@given(inst=instances(), factor=st.floats(min_value=1.0, max_value=4.0))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_property2_holds_at_feasible_deadlines(inst, factor):
    """At any deadline at least the sequential upper bound, Property 2 holds."""
    deadline = inst.upper_bound() * factor
    assert property2_bound_holds(inst, deadline) is True


# --------------------------------------------------------------------------- #
# list scheduling invariants
# --------------------------------------------------------------------------- #
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False), min_size=1, max_size=40
    ),
    data=st.data(),
)
def test_sliding_window_max_matches_naive(values, data):
    arr = np.array(values)
    width = data.draw(st.integers(min_value=1, max_value=len(values)))
    fast = sliding_window_max(arr, width)
    naive = np.array([arr[s : s + width].max() for s in range(arr.size - width + 1)])
    assert np.allclose(fast, naive)


@given(inst=instances(max_tasks=6, max_procs=6), data=st.data())
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_contiguous_list_schedule_always_valid(inst, data):
    procs = [
        data.draw(st.integers(min_value=1, max_value=inst.num_procs))
        for _ in range(inst.num_tasks)
    ]
    allotment = Allotment(inst, procs)
    schedule = contiguous_list_schedule(allotment, range(inst.num_tasks))
    schedule.validate()
    assert schedule.is_complete()
    assert schedule.makespan() >= allotment.area_bound() - 1e-9


# --------------------------------------------------------------------------- #
# scheduler invariants
# --------------------------------------------------------------------------- #
@given(inst=instances(max_tasks=5, max_procs=6))
@settings(
    max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
)
def test_schedulers_produce_valid_bounded_schedules(inst):
    lb = best_lower_bound(inst)
    ub = inst.upper_bound()
    for scheduler in (MRTScheduler(eps=1e-2), MalleableListScheduler(eps=1e-2), SequentialLPTScheduler()):
        schedule = scheduler.schedule(inst)
        schedule.validate()
        assert schedule.is_complete()
        assert lb - 1e-6 <= schedule.makespan() <= ub + 1e-6


@given(inst=instances(max_tasks=5, max_procs=8))
@settings(
    max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None
)
def test_mrt_sqrt3_guarantee_against_lower_bound(inst):
    schedule = MRTScheduler(eps=1e-2).schedule(inst)
    assert schedule.makespan() <= SQRT3 * best_lower_bound(inst) * (1 + 2e-2) + 1e-9


# --------------------------------------------------------------------------- #
# knapsack invariant
# --------------------------------------------------------------------------- #
@given(
    weights=st.lists(st.integers(min_value=0, max_value=10), min_size=0, max_size=8),
    profits=st.lists(st.integers(min_value=0, max_value=10), min_size=0, max_size=8),
    capacity=st.integers(min_value=0, max_value=30),
)
def test_knapsack_matches_bruteforce(weights, profits, capacity):
    n = min(len(weights), len(profits))
    items = [KnapsackItem(i, weights[i], profits[i]) for i in range(n)]
    solution = knapsack_max_profit(items, capacity)
    best = 0
    for r in range(n + 1):
        for combo in itertools.combinations(items, r):
            if sum(i.weight for i in combo) <= capacity:
                best = max(best, sum(i.profit for i in combo))
    assert solution.profit == best
    assert solution.weight <= capacity or solution.weight == 0
