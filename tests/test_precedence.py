"""Tests for the precedence-graph extension (repro.extensions.precedence)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import Allotment, Instance, MalleableTask, ModelError, mixed_instance
from repro.extensions.precedence import (
    PrecedenceInstance,
    PrecedenceScheduler,
    critical_path_lower_bound,
    precedence_list_schedule,
    random_task_tree,
)


def chain_instance(n: int = 4, m: int = 4) -> tuple[Instance, nx.DiGraph]:
    tasks = [MalleableTask.constant_work(f"t{i}", 4.0, m) for i in range(n)]
    inst = Instance(tasks, m)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return inst, graph


class TestPrecedenceInstance:
    def test_valid_dag(self):
        inst, graph = chain_instance()
        p = PrecedenceInstance(inst, graph)
        assert p.num_tasks == 4
        assert p.predecessors(1) == [0]
        assert p.predecessors(0) == []

    def test_cycle_rejected(self):
        inst, graph = chain_instance()
        graph.add_edge(3, 0)
        with pytest.raises(ModelError):
            PrecedenceInstance(inst, graph)

    def test_bad_node_rejected(self):
        inst, graph = chain_instance()
        graph.add_node(99)
        with pytest.raises(ModelError):
            PrecedenceInstance(inst, graph)

    def test_bottom_levels_of_chain(self):
        inst, graph = chain_instance()
        p = PrecedenceInstance(inst, graph)
        allotment = Allotment.sequential(inst)
        levels = p.bottom_levels(allotment)
        # chain of four 4-hour tasks: bottom levels 16, 12, 8, 4
        assert np.allclose(levels, [16.0, 12.0, 8.0, 4.0])


class TestLowerBound:
    def test_chain_bound_uses_critical_path(self):
        inst, graph = chain_instance(n=4, m=4)
        p = PrecedenceInstance(inst, graph)
        # best case: each task takes 1.0 on 4 processors, chain of 4 -> 4.0
        assert critical_path_lower_bound(p) == pytest.approx(4.0)

    def test_independent_bound_is_area(self):
        inst, _ = chain_instance(n=4, m=4)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(4))
        p = PrecedenceInstance(inst, graph)
        assert critical_path_lower_bound(p) == pytest.approx(4.0)  # area 16/4


class TestPrecedenceListSchedule:
    def test_chain_respects_precedence(self):
        inst, graph = chain_instance()
        p = PrecedenceInstance(inst, graph)
        allotment = Allotment.gang(inst)
        schedule = precedence_list_schedule(p, allotment)
        schedule.validate()
        for i in range(3):
            assert schedule.entry_for(i).end <= schedule.entry_for(i + 1).start + 1e-9

    def test_random_dag_respects_precedence(self):
        inst = mixed_instance(12, 8, seed=3)
        p = random_task_tree(inst, seed=5)
        allotment = Allotment.sequential(inst)
        schedule = precedence_list_schedule(p, allotment)
        schedule.validate()
        for u, v in p.graph.edges:
            assert schedule.entry_for(int(u)).end <= schedule.entry_for(int(v)).start + 1e-9

    def test_independent_tasks_fill_the_machine(self):
        inst, _ = chain_instance(n=4, m=4)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(4))
        p = PrecedenceInstance(inst, graph)
        schedule = precedence_list_schedule(p, Allotment.sequential(inst))
        assert schedule.makespan() == pytest.approx(4.0)


class TestPrecedenceScheduler:
    def test_scheduler_on_tree(self):
        inst = mixed_instance(15, 8, seed=7)
        p = random_task_tree(inst, seed=1)
        scheduler = PrecedenceScheduler()
        schedule = scheduler.schedule_graph(p)
        schedule.validate()
        assert schedule.makespan() >= critical_path_lower_bound(p) - 1e-6
        for u, v in p.graph.edges:
            assert schedule.entry_for(int(u)).end <= schedule.entry_for(int(v)).start + 1e-9

    def test_scheduler_without_edges_matches_independent_interface(self):
        inst = mixed_instance(10, 8, seed=2)
        schedule = PrecedenceScheduler().schedule(inst)
        schedule.validate()
        assert schedule.is_complete()

    def test_invalid_num_guesses(self):
        with pytest.raises(ModelError):
            PrecedenceScheduler(num_guesses=0)

    def test_chain_uses_parallelism(self):
        """On a pure chain the scheduler parallelises tasks instead of running
        them sequentially on one processor."""
        inst, graph = chain_instance(n=4, m=8)
        p = PrecedenceInstance(inst, graph)
        schedule = PrecedenceScheduler().schedule_graph(p)
        sequential_chain = sum(t.sequential_time() for t in inst.tasks)
        assert schedule.makespan() < sequential_chain - 1e-9
