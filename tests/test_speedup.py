"""Unit tests for the speedup models (repro.model.speedup)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AmdahlSpeedup,
    CommunicationOverheadSpeedup,
    ModelError,
    NoSpeedup,
    PerfectSpeedup,
    PowerLawSpeedup,
    TabulatedSpeedup,
    ThresholdSpeedup,
)


ALL_MODELS = [
    PerfectSpeedup(),
    NoSpeedup(),
    AmdahlSpeedup(0.1),
    AmdahlSpeedup(0.5),
    PowerLawSpeedup(0.7),
    CommunicationOverheadSpeedup(0.02),
    ThresholdSpeedup(4),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__ + repr(getattr(m, "__dict__", "")))
class TestCommonModelBehaviour:
    def test_speedup_at_one_is_one(self, model):
        assert model.speedup(1) == pytest.approx(1.0)

    def test_speedups_vector_matches_scalar(self, model):
        vec = model.speedups(6)
        assert len(vec) == 6
        for p in range(1, 7):
            assert vec[p - 1] == pytest.approx(model.speedup(p))

    def test_profile_scales_with_sequential_time(self, model):
        p1 = model.profile(10.0, 5)
        p2 = model.profile(20.0, 5)
        assert np.allclose(p2, 2.0 * p1)

    def test_make_task_is_monotonic(self, model):
        task = model.make_task("t", 10.0, 16)
        assert task.is_monotonic
        assert task.max_procs == 16

    def test_make_task_sequential_time(self, model):
        task = model.make_task("t", 7.5, 8)
        assert task.time(1) == pytest.approx(7.5)


class TestPerfectAndNone:
    def test_perfect_speedup_is_linear(self):
        model = PerfectSpeedup()
        assert model.speedup(7) == 7.0

    def test_no_speedup_is_flat(self):
        model = NoSpeedup()
        assert model.speedup(7) == 1.0


class TestAmdahl:
    def test_limits(self):
        assert AmdahlSpeedup(0.0).speedup(8) == pytest.approx(8.0)
        assert AmdahlSpeedup(1.0).speedup(8) == pytest.approx(1.0)

    def test_bounded_by_serial_fraction(self):
        model = AmdahlSpeedup(0.25)
        assert model.speedup(10**6) <= 4.0 + 1e-9

    def test_invalid_fraction(self):
        with pytest.raises(ModelError):
            AmdahlSpeedup(-0.1)
        with pytest.raises(ModelError):
            AmdahlSpeedup(1.1)


class TestPowerLaw:
    def test_alpha_one_is_perfect(self):
        assert PowerLawSpeedup(1.0).speedup(9) == pytest.approx(9.0)

    def test_alpha_zero_is_flat(self):
        assert PowerLawSpeedup(0.0).speedup(9) == pytest.approx(1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ModelError):
            PowerLawSpeedup(1.5)


class TestCommunicationOverhead:
    def test_zero_overhead_is_perfect(self):
        assert CommunicationOverheadSpeedup(0.0).speedup(5) == pytest.approx(5.0)

    def test_overhead_eventually_dominates(self):
        model = CommunicationOverheadSpeedup(0.1)
        assert model.speedup(64) < model.speedup(3)

    def test_optimal_procs(self):
        model = CommunicationOverheadSpeedup(0.01)
        best = model.optimal_procs(64)
        assert 1 <= best <= 64
        assert model.speedup(best) >= model.speedup(max(1, best - 1)) - 1e-12
        assert model.speedup(best) >= model.speedup(min(64, best + 1)) - 1e-12

    def test_optimal_procs_zero_overhead(self):
        assert CommunicationOverheadSpeedup(0.0).optimal_procs(16) == 16

    def test_negative_overhead_rejected(self):
        with pytest.raises(ModelError):
            CommunicationOverheadSpeedup(-0.1)

    def test_make_task_plateaus(self):
        """Monotonic repair turns the overhead dip into a plateau."""
        task = CommunicationOverheadSpeedup(0.2).make_task("t", 10.0, 32)
        assert task.time(32) <= task.time(1)
        # beyond the optimum, times stay flat (never increase)
        diffs = np.diff(task.times)
        assert np.all(diffs <= 1e-12)


class TestThreshold:
    def test_speedup_saturates(self):
        model = ThresholdSpeedup(3)
        assert model.speedup(2) == 2.0
        assert model.speedup(3) == 3.0
        assert model.speedup(10) == 3.0

    def test_invalid_parallelism(self):
        with pytest.raises(ModelError):
            ThresholdSpeedup(0)


class TestTabulated:
    def test_lookup(self):
        model = TabulatedSpeedup([1.0, 1.8, 2.4])
        assert model.speedup(2) == pytest.approx(1.8)

    def test_first_value_must_be_one(self):
        with pytest.raises(ModelError):
            TabulatedSpeedup([1.5, 2.0])

    def test_out_of_range(self):
        model = TabulatedSpeedup([1.0, 1.5])
        with pytest.raises(ModelError):
            model.speedup(3)

    def test_non_positive_rejected(self):
        with pytest.raises(ModelError):
            TabulatedSpeedup([1.0, -1.0])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            TabulatedSpeedup([])
