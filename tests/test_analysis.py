"""Tests for metrics, Gantt rendering, tables and the experiment harness."""

from __future__ import annotations

import pytest

from repro import MRTScheduler, evaluate_schedule, gantt_chart, mixed_instance
from repro.analysis.experiments import (
    ComparisonResult,
    RunRecord,
    default_schedulers,
    run_comparison,
    sweep_workloads,
)
from repro.analysis.gantt import shelf_summary
from repro.analysis.metrics import approximation_ratio
from repro.analysis.tables import format_markdown_table, format_table
from repro.baselines.sequential import SequentialLPTScheduler


class TestMetrics:
    def test_evaluate_schedule_fields(self, small_instance):
        schedule = MRTScheduler().schedule(small_instance)
        metrics = evaluate_schedule(schedule)
        assert metrics.algorithm == schedule.algorithm
        assert metrics.makespan == pytest.approx(schedule.makespan())
        assert metrics.ratio >= 1.0 - 1e-9
        assert 0.0 < metrics.utilization <= 1.0 + 1e-9
        assert metrics.work_inflation >= 1.0 - 1e-9

    def test_approximation_ratio_custom_bound(self, small_instance):
        schedule = MRTScheduler().schedule(small_instance)
        assert approximation_ratio(schedule, lower_bound=schedule.makespan()) == pytest.approx(1.0)

    def test_approximation_ratio_zero_bound(self, small_instance):
        schedule = MRTScheduler().schedule(small_instance)
        assert approximation_ratio(schedule, lower_bound=0.0) == float("inf")


class TestGantt:
    def test_contains_all_processors(self, small_instance):
        schedule = MRTScheduler().schedule(small_instance)
        text = gantt_chart(schedule)
        for proc in range(small_instance.num_procs):
            assert f"P{proc:>3} |" in text

    def test_empty_schedule(self, small_instance):
        from repro import Schedule

        assert gantt_chart(Schedule(small_instance)) == "(empty schedule)"

    def test_legend_optional(self, small_instance):
        schedule = MRTScheduler().schedule(small_instance)
        assert "legend:" in gantt_chart(schedule, legend=True)
        assert "legend:" not in gantt_chart(schedule, legend=False)

    def test_shelf_summary_lines(self, small_instance):
        schedule = MRTScheduler().schedule(small_instance)
        text = shelf_summary(schedule)
        assert text.count("\n") + 1 == len({round(e.start, 9) for e in schedule.entries})


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_markdown_table(self):
        text = format_markdown_table(["x"], [[1.23456]])
        assert text.splitlines()[0] == "| x |"
        assert "1.235" in text


class TestExperimentHarness:
    def test_run_comparison_records(self, small_instance):
        result = run_comparison(
            [small_instance], [MRTScheduler(), SequentialLPTScheduler()]
        )
        assert len(result.records) == 2
        assert set(result.algorithms()) == {"mrt-sqrt3", "sequential-lpt"}
        for record in result.records:
            assert record.ratio >= 1.0 - 1e-9
            assert record.runtime_seconds >= 0

    def test_summary_table_has_all_algorithms(self, small_instance):
        result = run_comparison(
            [small_instance], [MRTScheduler(), SequentialLPTScheduler()]
        )
        table = result.summary_table()
        assert "mrt-sqrt3" in table and "sequential-lpt" in table

    def test_grouped_by_procs(self):
        records = [
            RunRecord("i", "f", 4, 8, "a", 2.0, 1.0, 2.0, 0.0),
            RunRecord("i", "f", 4, 8, "a", 4.0, 1.0, 4.0, 0.0),
            RunRecord("i", "f", 4, 16, "a", 3.0, 1.0, 3.0, 0.0),
        ]
        result = ComparisonResult(records=records)
        grouped = result.grouped_by_procs("a")
        assert grouped[8] == pytest.approx(3.0)
        assert grouped[16] == pytest.approx(3.0)

    def test_default_schedulers_line_up(self):
        names = {s.name for s in default_schedulers()}
        assert "mrt-sqrt3" in names
        assert any(name.startswith("ludwig") for name in names)
        assert any(name.startswith("turek") for name in names)

    def test_sweep_workloads_small(self):
        result = sweep_workloads(
            families=("uniform",),
            num_tasks=8,
            machine_sizes=(4,),
            repetitions=1,
            seed=0,
            schedulers=[MRTScheduler(), SequentialLPTScheduler()],
        )
        assert len(result.records) == 2
        assert result.records[0].family == "uniform"
