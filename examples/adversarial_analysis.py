#!/usr/bin/env python
"""Inspect the algorithm's behaviour on adversarial / structural instances.

The paper's analysis hinges on a handful of structural situations: the
two-level schedules of the canonical list algorithm (Property 3), the idle
stair-steps between levels (Figure 2), the λ-schedule of the knapsack branch
(Figure 4) and the trivial single-task solutions (Figure 5).  This example
replays each situation on the corresponding stress instance, prints the
Gantt chart and reports which branch of the dual approximation handled it —
a guided tour of the machinery for readers of the paper.

Run with::

    python examples/adversarial_analysis.py
"""

from __future__ import annotations

import math

from repro import MRTScheduler, best_lower_bound, gantt_chart
from repro.core import theory
from repro.core.canonical_list import MU_STAR, canonical_list_schedule, first_two_level_completion
from repro.core.list_scheduling import compute_levels
from repro.workloads.adversarial import (
    fragmentation_instance,
    lpt_worst_case_instance,
    property3_stress_instances,
    shelf_overflow_instance,
)


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    sqrt3 = math.sqrt(3.0)

    section("1. Fragmentation instance (Figure 2): idle stair-steps between levels")
    inst = fragmentation_instance(16)
    schedule = canonical_list_schedule(inst, best_lower_bound(inst) * 1.1)
    assert schedule is not None
    levels = compute_levels(schedule)
    print(f"levels present: {sorted(set(levels.values()))}")
    print(f"idle area below the makespan: {schedule.idle_area():.3f}")
    print(gantt_chart(schedule, legend=False))

    section("2. Shelf-overflow instance (Figure 4 regime): the knapsack branch")
    inst = shelf_overflow_instance(24, seed=1)
    scheduler = MRTScheduler()
    schedule = scheduler.schedule(inst)
    print(f"branch used   : {scheduler.last_result.branch}")
    print(f"makespan      : {schedule.makespan():.3f}")
    print(f"ratio to LB   : {schedule.makespan() / best_lower_bound(inst):.3f} (<= {sqrt3:.3f})")

    section("3. Graham's LPT worst case: sequential tasks only")
    inst = lpt_worst_case_instance(8)
    scheduler = MRTScheduler()
    schedule = scheduler.schedule(inst)
    print(f"branch used   : {scheduler.last_result.branch}")
    print(f"ratio to LB   : {schedule.makespan() / best_lower_bound(inst):.3f}")

    section("4. Property 3 on m = m*(sqrt(3)/2) processors")
    m = theory.m_star(MU_STAR)
    worst = 0.0
    checked = 0
    for stress in property3_stress_instances(m, MU_STAR, trials=25, rng=3):
        area = stress.mu_area(1.0)
        if area is None or area > MU_STAR * m:
            continue
        sched = canonical_list_schedule(stress, 1.0)
        if sched is None:
            continue
        checked += 1
        worst = max(worst, first_two_level_completion(sched))
    print(f"machine size m*(sqrt(3)/2) = {m}")
    print(
        f"worst first-two-level completion over {checked} in-scope stress instances: "
        f"{worst:.4f} (bound 2*mu = {2 * MU_STAR:.4f})"
    )


if __name__ == "__main__":
    main()
