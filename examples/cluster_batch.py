#!/usr/bin/env python
"""Batch scheduling of moldable HPC jobs on a cluster partition.

A common down-stream use of the paper's algorithm: an HPC batch system
receives a set of *moldable* jobs (each job states its running time as a
function of the node count — measured or predicted from Amdahl/power-law
fits) and must pack one scheduling window onto a partition of ``m`` nodes.

The example builds a job mix modelled after typical cluster traces (a few
wide long-running simulations, many medium analysis jobs, a tail of short
sequential post-processing jobs), schedules the window with the √3 algorithm
and with the classical two-phase baselines, and prints per-job allotments so
the output can be fed to a resource manager.

Run with::

    python examples/cluster_batch.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AmdahlSpeedup,
    Instance,
    LudwigScheduler,
    MRTScheduler,
    PowerLawSpeedup,
    SequentialLPTScheduler,
    ThresholdSpeedup,
    TurekScheduler,
    best_lower_bound,
)
from repro.analysis.tables import format_table


def build_job_mix(num_nodes: int, seed: int = 2024) -> Instance:
    """A realistic moldable job mix for one scheduling window."""
    rng = np.random.default_rng(seed)
    jobs = []
    # 3 wide climate/CFD simulations: highly parallel, hours long.
    for i in range(3):
        model = PowerLawSpeedup(alpha=float(rng.uniform(0.85, 0.95)))
        jobs.append(model.make_task(f"cfd-{i}", float(rng.uniform(20, 40)), num_nodes))
    # 8 medium data-analysis jobs with an Amdahl profile.
    for i in range(8):
        model = AmdahlSpeedup(serial_fraction=float(rng.uniform(0.05, 0.25)))
        jobs.append(model.make_task(f"analysis-{i}", float(rng.uniform(4, 12)), num_nodes))
    # 6 ensemble members with a hard parallelism cap (fixed domain decomposition).
    for i in range(6):
        model = ThresholdSpeedup(parallelism=int(rng.integers(2, 9)))
        jobs.append(model.make_task(f"ensemble-{i}", float(rng.uniform(6, 10)), num_nodes))
    # 10 short sequential post-processing jobs.
    for i in range(10):
        model = AmdahlSpeedup(serial_fraction=0.95)
        jobs.append(model.make_task(f"post-{i}", float(rng.uniform(0.5, 2.0)), num_nodes))
    return Instance(jobs, num_nodes, name="batch-window")


def main() -> None:
    num_nodes = 64
    instance = build_job_mix(num_nodes)
    lb = best_lower_bound(instance)
    print(
        f"Scheduling window: {instance.num_tasks} moldable jobs on {num_nodes} nodes "
        f"(lower bound {lb:.2f} h)"
    )
    print("=" * 70)

    schedulers = [
        MRTScheduler(),
        LudwigScheduler(),
        TurekScheduler(max_candidates=128),
        SequentialLPTScheduler(),
    ]
    rows = []
    schedules = {}
    for scheduler in schedulers:
        schedule = scheduler.schedule(instance)
        schedules[scheduler.name] = schedule
        rows.append(
            [
                scheduler.name,
                f"{schedule.makespan():.2f}",
                f"{schedule.makespan() / lb:.3f}",
                f"{schedule.utilization():.1%}",
            ]
        )
    print(format_table(["scheduler", "window length (h)", "ratio", "utilisation"], rows))

    best = schedules["mrt-sqrt3"]
    print("\nAllotment chosen by the sqrt(3) scheduler (what the resource manager enacts):")
    allot_rows = []
    for entry in sorted(best.entries, key=lambda e: (e.start, e.first_proc)):
        job = instance.tasks[entry.task_index]
        allot_rows.append(
            [
                job.name,
                entry.num_procs,
                f"{entry.duration:.2f}",
                f"{entry.start:.2f}",
                f"nodes {entry.first_proc}-{entry.first_proc + entry.num_procs - 1}",
            ]
        )
    print(
        format_table(
            ["job", "nodes", "runtime (h)", "start (h)", "placement"], allot_rows[:15]
        )
    )
    if len(allot_rows) > 15:
        print(f"... ({len(allot_rows) - 15} more jobs)")


if __name__ == "__main__":
    main()
