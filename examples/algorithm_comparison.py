#!/usr/bin/env python
"""Reproduce the paper's average-case comparison (experiment EXP-A) from the API.

Runs the √3 scheduler against the two-phase baselines and the naive anchors
over several workload families and machine sizes, printing the aggregate
table of ``EXPERIMENTS.md`` and the per-machine-size breakdown.  Smaller and
faster than the full benchmark (``benchmarks/bench_expA_comparison.py``) so
it can be used interactively; pass ``--full`` for the benchmark-sized sweep.

Run with::

    python examples/algorithm_comparison.py [--full]
"""

from __future__ import annotations

import argparse

from repro.analysis.experiments import sweep_workloads
from repro.analysis.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run the benchmark-sized sweep")
    args = parser.parse_args()

    if args.full:
        families = ("uniform", "mixed", "heavy-tailed", "rigid-heavy")
        machines = (8, 16, 32, 64)
        tasks, reps = 40, 3
    else:
        families = ("uniform", "mixed", "heavy-tailed")
        machines = (8, 16)
        tasks, reps = 20, 2

    print(
        f"EXP-A sweep: families={families}, machines={machines}, "
        f"{tasks} tasks, {reps} repetitions"
    )
    result = sweep_workloads(
        families=families,
        num_tasks=tasks,
        machine_sizes=machines,
        repetitions=reps,
        seed=1,
    )
    print()
    print(result.summary_table())

    print("\nMean ratio per machine size:")
    rows = []
    for algo in result.algorithms():
        grouped = result.grouped_by_procs(algo)
        rows.append([algo] + [f"{grouped[m]:.3f}" for m in machines])
    print(format_table(["algorithm"] + [f"m={m}" for m in machines], rows))

    mrt_worst = result.ratios("mrt-sqrt3").max()
    print(
        f"\nWorst ratio of the sqrt(3) scheduler over the whole sweep: "
        f"{mrt_worst:.4f} (paper guarantee: 1.7321)"
    )


if __name__ == "__main__":
    main()
