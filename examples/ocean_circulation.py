#!/usr/bin/env python
"""Ocean-circulation load balancing — the paper's motivating application.

Section 1 of the paper motivates malleable tasks with an adaptive-mesh code
simulating the circulation of the Atlantic Ocean (Blayo, Debreu, Mounié &
Trystram): refined sub-domains are malleable tasks whose parallel efficiency
is limited by halo exchanges.  At every re-meshing step the runtime must
re-partition the processors among the patches — exactly the malleable
scheduling problem.

This example synthesises such a workload (:func:`repro.ocean_instance`),
schedules one coupling step with the √3 algorithm and with the naive
policies a runtime system might use instead (gang scheduling and
static one-processor-per-patch), and reports how much wall-clock time the
malleable scheduler saves.  It then repeats the comparison over several
re-meshing steps (different refinement fields) to show the benefit is
systematic.

Run with::

    python examples/ocean_circulation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GangScheduler,
    MRTScheduler,
    SequentialLPTScheduler,
    best_lower_bound,
    evaluate_schedule,
    gantt_chart,
    ocean_instance,
)
from repro.analysis.tables import format_table


def schedule_one_step(num_procs: int = 64, seed: int = 0, *, verbose: bool = True) -> dict:
    instance = ocean_instance(
        num_procs, blocks=5, base_points=48, max_level=4, comm_cost=0.05, seed=seed
    )
    lb = best_lower_bound(instance)
    rows = {}
    for scheduler in (MRTScheduler(), SequentialLPTScheduler(), GangScheduler()):
        schedule = scheduler.schedule(instance)
        metrics = evaluate_schedule(schedule, lower_bound=lb)
        rows[scheduler.name] = metrics
        if verbose and scheduler.name == "mrt-sqrt3":
            print(
                f"step {seed}: {instance.num_tasks} patches, lower bound {lb:.3f}s, "
                f"MRT makespan {metrics.makespan:.3f}s (ratio {metrics.ratio:.3f})"
            )
    return rows


def main() -> None:
    num_procs = 64
    print(f"Adaptive-mesh ocean workload on m = {num_procs} processors")
    print("=" * 64)

    # One coupling step in detail.
    instance = ocean_instance(num_procs, blocks=5, base_points=48, comm_cost=0.05, seed=0)
    schedule = MRTScheduler().schedule(instance)
    print(gantt_chart(schedule, legend=False))
    print()

    # Several re-meshing steps: compare the policies.
    steps = range(6)
    totals: dict[str, float] = {}
    ratios: dict[str, list[float]] = {}
    for seed in steps:
        rows = schedule_one_step(num_procs, seed, verbose=False)
        for name, metrics in rows.items():
            totals[name] = totals.get(name, 0.0) + metrics.makespan
            ratios.setdefault(name, []).append(metrics.ratio)

    table_rows = []
    for name in totals:
        table_rows.append(
            [
                name,
                f"{totals[name]:.2f}",
                f"{np.mean(ratios[name]):.3f}",
                f"{np.max(ratios[name]):.3f}",
            ]
        )
    print(f"Accumulated wall-clock over {len(list(steps))} re-meshing steps:")
    print(
        format_table(
            ["policy", "total time (s)", "mean ratio", "worst ratio"], table_rows
        )
    )
    saving_vs_seq = 1.0 - totals["mrt-sqrt3"] / totals["sequential-lpt"]
    saving_vs_gang = 1.0 - totals["mrt-sqrt3"] / totals["gang"]
    print(
        f"\nMalleable (sqrt(3)) scheduling saves {saving_vs_seq:.1%} of the wall-clock "
        f"time vs one-processor-per-patch and {saving_vs_gang:.1%} vs gang scheduling."
    )


if __name__ == "__main__":
    main()
