#!/usr/bin/env python
"""Quickstart: schedule a synthetic malleable workload with the √3 algorithm.

This example walks through the full public API in a few lines:

1. build malleable tasks from a speedup model,
2. assemble an :class:`repro.Instance`,
3. run the paper's scheduler (:class:`repro.MRTScheduler`),
4. validate the schedule on the discrete-event simulator,
5. print metrics, the branch the dual approximation used and a Gantt chart.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AmdahlSpeedup,
    CommunicationOverheadSpeedup,
    Instance,
    MRTScheduler,
    best_lower_bound,
    evaluate_schedule,
    gantt_chart,
    simulate_and_check,
)


def build_instance(num_procs: int = 16) -> Instance:
    """A small hand-built workload: solvers, refiners and post-processing."""
    tasks = []
    # Three large solver tasks that parallelise well (5% serial fraction).
    solver = AmdahlSpeedup(serial_fraction=0.05)
    for i, hours in enumerate([12.0, 9.0, 7.5]):
        tasks.append(solver.make_task(f"solve[{i}]", hours, num_procs))
    # Mesh-refinement tasks limited by halo-exchange communications.
    refine = CommunicationOverheadSpeedup(overhead=0.03)
    for i, hours in enumerate([4.0, 3.0, 2.5, 2.0]):
        tasks.append(refine.make_task(f"refine[{i}]", hours, num_procs))
    # Sequential post-processing (no speedup worth the communication).
    post = AmdahlSpeedup(serial_fraction=0.9)
    for i in range(5):
        tasks.append(post.make_task(f"post[{i}]", 1.0 + 0.2 * i, num_procs))
    return Instance(tasks, num_procs, name="quickstart")


def main() -> None:
    instance = build_instance()
    print(f"instance: {instance.num_tasks} malleable tasks on m = {instance.num_procs} processors")
    print(f"sequential work          : {instance.total_sequential_work():.2f} hours")
    print(f"makespan lower bound     : {best_lower_bound(instance):.3f} hours")

    scheduler = MRTScheduler()
    schedule = scheduler.schedule(instance)
    simulate_and_check(schedule)  # executes the schedule event by event

    metrics = evaluate_schedule(schedule)
    result = scheduler.last_result
    print(f"\nalgorithm                : {metrics.algorithm}")
    print(f"branch used by the dual  : {result.branch}")
    print(f"accepted guess d         : {result.best_guess:.3f}")
    print(f"makespan                 : {metrics.makespan:.3f} hours")
    print(f"ratio to lower bound     : {metrics.ratio:.3f}  (guarantee sqrt(3) = 1.732)")
    print(f"machine utilisation      : {metrics.utilization:.1%}")
    print(f"work inflation           : {metrics.work_inflation:.3f}x")
    print()
    print(gantt_chart(schedule))


if __name__ == "__main__":
    main()
