"""Legacy shim so that ``pip install -e . --no-use-pep517`` works offline.

All project metadata lives in ``pyproject.toml``; this file only exists
because the build environment has no network access and an old setuptools
that cannot build editable wheels (PEP 660) without the ``wheel`` package.
"""
from setuptools import setup

setup()
